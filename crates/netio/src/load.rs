//! The closed-loop load generator.
//!
//! `concurrency` client threads each run a closed loop against the
//! target server: build a query, send it, wait for the matching
//! response (or a timeout), record the latency, repeat. Closed-loop
//! means at most one outstanding query per thread, so the offered load
//! adapts to the server rather than overrunning socket buffers — the
//! right shape for measuring serving capacity on loopback, and the same
//! discipline the paper's vantage points impose (one probe, then wait).
//!
//! The query mix is drawn deterministically (per-thread `detrand`
//! streams seeded from [`LoadConfig::seed`]) over the preset measurement
//! zone: unique-label probe TXT lookups (the paper's cold-cache trick),
//! apex NS, glue A, apex TXT (a NODATA), and CHAOS identification.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

use detrand::{splitmix64, DetRng, Rng};
use dnswild_metrics::{Counter, LogHistogram, Registry};
use dnswild_proto::{Class, Message, Name, RType};
use dnswild_server::ServerStats;
use dnswild_telemetry::{
    journey_from_payload, qname_hash32, Collector, Event, EventKind, FLAG_RESPONSE, FLAG_TIMEOUT,
    RCODE_NONE,
};

/// Relative weights of the query kinds the generator draws from.
#[derive(Debug, Clone, Copy)]
pub struct QueryMix {
    /// Unique-label wildcard TXT probes (`p<thread>-q<n>.<origin>`).
    pub probe_txt: u32,
    /// `<origin> NS` — the apex NS RRset.
    pub apex_ns: u32,
    /// `ns1.<origin> A` — delegation glue.
    pub glue_a: u32,
    /// `<origin> TXT` — a NODATA (the wildcard does not cover the apex).
    pub apex_txt: u32,
    /// `hostname.bind CH TXT` — CHAOS site identification.
    pub chaos: u32,
}

impl Default for QueryMix {
    /// A recursive-like mix: mostly probe lookups with a sprinkling of
    /// infrastructure queries.
    fn default() -> Self {
        QueryMix { probe_txt: 84, apex_ns: 6, glue_a: 5, apex_txt: 3, chaos: 2 }
    }
}

impl QueryMix {
    /// Probe TXT queries only — every answer is a positive, branded TXT.
    pub fn probe_only() -> Self {
        QueryMix { probe_txt: 1, apex_ns: 0, glue_a: 0, apex_txt: 0, chaos: 0 }
    }

    fn total(&self) -> u32 {
        self.probe_txt + self.apex_ns + self.glue_a + self.apex_txt + self.chaos
    }
}

/// Configuration for [`blast`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// The server under test.
    pub target: SocketAddr,
    /// Client threads, each running an independent closed loop.
    pub concurrency: usize,
    /// Total queries across all threads.
    pub queries: u64,
    /// Per-query response timeout.
    pub timeout: Duration,
    /// Base seed for the deterministic query mix.
    pub seed: u64,
    /// Zone origin the mix queries against.
    pub origin: Name,
    /// Relative query-kind weights.
    pub mix: QueryMix,
    /// Telemetry collector: when set, each client thread records one
    /// `ClientQuery` event per transaction (answer or timeout).
    pub collector: Option<Arc<Collector>>,
    /// `auth_id` stamped on recorded events (index of the target server
    /// in the collector's auth table).
    pub trace_auth_id: u16,
    /// Metrics registry: when set, the generator counts sent / answered
    /// / timed-out transactions and records round-trip latency into
    /// `dnswild_load_latency_ns`.
    pub metrics: Option<Arc<Registry>>,
}

impl LoadConfig {
    /// Defaults: 4 threads, 10,000 queries, 1 s timeout, seed 2017,
    /// the default mixed workload.
    pub fn new(target: SocketAddr, origin: Name) -> Self {
        LoadConfig {
            target,
            concurrency: 4,
            queries: 10_000,
            timeout: Duration::from_secs(1),
            seed: 2017,
            origin,
            mix: QueryMix::default(),
            collector: None,
            trace_auth_id: 0,
            metrics: None,
        }
    }

    /// Overrides the thread count.
    pub fn concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = concurrency.max(1);
        self
    }

    /// Overrides the total query count.
    pub fn queries(mut self, queries: u64) -> Self {
        self.queries = queries;
        self
    }

    /// Overrides the query mix.
    pub fn mix(mut self, mix: QueryMix) -> Self {
        self.mix = mix;
        self
    }

    /// Attaches a telemetry collector (see [`LoadConfig::collector`]).
    pub fn collector(mut self, collector: Arc<Collector>, auth_id: u16) -> Self {
        self.collector = Some(collector);
        self.trace_auth_id = auth_id;
        self
    }

    /// Attaches a metrics registry (see [`LoadConfig::metrics`]).
    pub fn metrics(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = Some(registry);
        self
    }
}

/// Registry handles the generator records through.
struct LoadMetrics {
    sent: Arc<Counter>,
    answered: Arc<Counter>,
    timeouts: Arc<Counter>,
    latency_ns: Arc<LogHistogram>,
}

impl LoadMetrics {
    fn register(registry: &Registry) -> LoadMetrics {
        LoadMetrics {
            sent: registry.counter("dnswild_load_sent_total", "load generator queries sent"),
            answered: registry
                .counter("dnswild_load_answered_total", "load generator responses received"),
            timeouts: registry
                .counter("dnswild_load_timeouts_total", "load generator per-query timeouts"),
            latency_ns: registry.histogram(
                "dnswild_load_latency_ns",
                "closed-loop round-trip latency, nanoseconds",
            ),
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries sent.
    pub sent: u64,
    /// Responses received with the expected transaction ID.
    pub received: u64,
    /// Queries that saw no response within the timeout.
    pub timeouts: u64,
    /// Responses discarded for carrying a stale/unexpected ID.
    pub mismatched: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-query round-trip latencies, sorted ascending (nanoseconds).
    latencies_ns: Vec<u64>,
}

impl LoadReport {
    /// Achieved queries-per-second (received over wall-clock).
    pub fn qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.received as f64 / secs
    }

    /// Latency at quantile `q` in `[0, 1]`, in nanoseconds — computed by
    /// the workspace's shared estimator (`dnswild_telemetry::stats`).
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        dnswild_telemetry::stats::percentile_sorted_u64(&self.latencies_ns, q * 100.0)
    }

    /// The sorted raw latency samples (for external summarisers such as
    /// `dnswild_bench::Stats`).
    pub fn latencies_ns(&self) -> &[u64] {
        &self.latencies_ns
    }

    /// Whether every query was answered: nothing timed out, nothing
    /// arrived with a stale ID.
    pub fn all_answered(&self) -> bool {
        self.received == self.sent && self.timeouts == 0 && self.mismatched == 0
    }

    /// Checks the generator's view against the server's aggregated
    /// counters: every sent packet was counted as a query, and every
    /// query was classified into exactly one question outcome. Returns a
    /// human-readable complaint when the books don't balance.
    pub fn check_server_stats(&self, stats: ServerStats) -> Result<(), String> {
        if stats.queries != self.sent {
            return Err(format!(
                "server counted {} queries, generator sent {}",
                stats.queries, self.sent
            ));
        }
        if stats.question_outcomes() != self.sent {
            return Err(format!(
                "question outcomes sum to {}, expected {} ({stats:?})",
                stats.question_outcomes(),
                self.sent
            ));
        }
        Ok(())
    }
}

/// One thread's tally, folded into the [`LoadReport`].
#[derive(Debug, Default)]
struct WorkerTally {
    sent: u64,
    received: u64,
    timeouts: u64,
    mismatched: u64,
    latencies_ns: Vec<u64>,
}

/// Runs the closed-loop load test; blocks until every thread finishes.
pub fn blast(config: LoadConfig) -> io::Result<LoadReport> {
    let threads = config.concurrency.max(1);
    let metrics = config.metrics.as_ref().map(|r| LoadMetrics::register(r));
    let start = Instant::now();
    let mut tallies: Vec<io::Result<WorkerTally>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            // Spread the total as evenly as possible; early threads take
            // the remainder.
            let share = config.queries / threads as u64
                + u64::from((t as u64) < config.queries % threads as u64);
            let cfg = &config;
            let metrics = metrics.as_ref();
            handles.push(scope.spawn(move || client_loop(cfg, t, share, metrics)));
        }
        for h in handles {
            tallies.push(h.join().expect("load worker panicked"));
        }
    });
    let elapsed = start.elapsed();

    let mut report = LoadReport {
        sent: 0,
        received: 0,
        timeouts: 0,
        mismatched: 0,
        elapsed,
        latencies_ns: Vec::new(),
    };
    for tally in tallies {
        let tally = tally?;
        report.sent += tally.sent;
        report.received += tally.received;
        report.timeouts += tally.timeouts;
        report.mismatched += tally.mismatched;
        report.latencies_ns.extend_from_slice(&tally.latencies_ns);
    }
    report.latencies_ns.sort_unstable();
    Ok(report)
}

/// Draws the next query from the mix.
fn next_query(rng: &mut DetRng, config: &LoadConfig, thread: usize, n: u64, id: u16) -> Message {
    let total = config.mix.total().max(1);
    let mut draw = rng.gen_range(0..total);
    let mix = &config.mix;
    let origin = &config.origin;
    let mut pick = |weight: u32| {
        if draw < weight {
            true
        } else {
            draw -= weight;
            false
        }
    };
    if pick(mix.probe_txt) {
        let label = format!("p{thread}-q{n}");
        let qname = origin.prepend(&label).expect("short probe label");
        Message::iterative_query(id, qname, RType::Txt)
    } else if pick(mix.apex_ns) {
        Message::iterative_query(id, origin.clone(), RType::Ns)
    } else if pick(mix.glue_a) {
        let qname = origin.prepend("ns1").expect("short label");
        Message::iterative_query(id, qname, RType::A)
    } else if pick(mix.apex_txt) {
        Message::iterative_query(id, origin.clone(), RType::Txt)
    } else {
        let mut q = Message::iterative_query(id, Name::parse("hostname.bind").unwrap(), RType::Txt);
        q.questions[0].qclass = Class::Ch;
        q
    }
}

/// One closed-loop client thread.
fn client_loop(
    config: &LoadConfig,
    thread: usize,
    queries: u64,
    metrics: Option<&LoadMetrics>,
) -> io::Result<WorkerTally> {
    let bind_addr: SocketAddr = if config.target.is_ipv4() {
        "0.0.0.0:0".parse().unwrap()
    } else {
        "[::]:0".parse().unwrap()
    };
    let socket = UdpSocket::bind(bind_addr)?;
    socket.connect(config.target)?;
    socket.set_read_timeout(Some(config.timeout))?;

    let mut rng = DetRng::seed_from_u64(
        config.seed ^ (thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let mut send_buf = Vec::with_capacity(512);
    let mut recv_buf = vec![0u8; 4096];
    let mut tally = WorkerTally { latencies_ns: Vec::with_capacity(queries as usize), ..Default::default() };
    let producer = config.collector.as_ref().map(|c| c.producer());
    // A stable per-thread client token: deterministic across runs (the
    // rank analysis groups trace events by it), unlike a socket address.
    let client_token = splitmix64(0x636c_6e74 ^ (thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));

    for n in 0..queries {
        let id = (n % u64::from(u16::MAX)) as u16;
        let query = next_query(&mut rng, config, thread, n, id);
        query
            .encode_into(&mut send_buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e:?}")))?;
        let sent_at = Instant::now();
        let deadline = sent_at + config.timeout;
        let sent_ns = producer.as_ref().map(|p| p.now_ns());
        socket.send(&send_buf)?;
        tally.sent += 1;
        if let Some(m) = metrics {
            m.sent.inc();
        }
        // Wait for the response carrying our ID; stale responses from
        // queries that already timed out are counted and skipped.
        let mut resp_len = 0usize;
        let answered = loop {
            match socket.recv(&mut recv_buf) {
                Ok(got) => {
                    if got >= 2 && u16::from_be_bytes([recv_buf[0], recv_buf[1]]) == id {
                        tally.received += 1;
                        let rtt_ns = sent_at.elapsed().as_nanos() as u64;
                        tally.latencies_ns.push(rtt_ns);
                        if let Some(m) = metrics {
                            m.answered.inc();
                            m.latency_ns.record(rtt_ns);
                        }
                        resp_len = got;
                        break true;
                    }
                    tally.mismatched += 1;
                    if Instant::now() >= deadline {
                        tally.timeouts += 1;
                        if let Some(m) = metrics {
                            m.timeouts.inc();
                        }
                        break false;
                    }
                }
                Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                    tally.timeouts += 1;
                    if let Some(m) = metrics {
                        m.timeouts.inc();
                    }
                    break false;
                }
                // A signal landing mid-recv is not a timeout and not a
                // worker-fatal error — retry the wait (the deadline
                // check above still bounds it).
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        if let (Some(producer), Some(sent_ns)) = (&producer, sent_ns) {
            let mut ev = Event::new(EventKind::ClientQuery);
            ev.ts_ns = sent_ns;
            ev.client_hash = client_token;
            // Question bytes past the header — allocation-free and
            // byte-identical to what the server hashes for this
            // datagram on its side.
            ev.qname_hash = qname_hash32(send_buf.get(12..).unwrap_or(&[]));
            (ev.journey, ev.dns_id) = journey_from_payload(&send_buf);
            ev.latency_ns =
                u32::try_from(producer.now_ns().saturating_sub(sent_ns)).unwrap_or(u32::MAX);
            ev.auth_id = config.trace_auth_id;
            ev.bytes_in = u16::try_from(send_buf.len()).unwrap_or(u16::MAX);
            ev.bytes_out = u16::try_from(resp_len).unwrap_or(u16::MAX);
            if answered {
                ev.flags = FLAG_RESPONSE;
                // Wire rcode lives in the low nibble of byte 3.
                ev.rcode = if resp_len >= 4 { recv_buf[3] & 0x0f } else { RCODE_NONE };
            } else {
                ev.flags = FLAG_TIMEOUT;
                ev.rcode = RCODE_NONE;
            }
            producer.record(&ev);
        }
    }
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServeConfig};
    use dnswild_zone::presets::test_domain_zone;
    use std::sync::Arc;

    fn origin() -> Name {
        Name::parse("ourtestdomain.nl").unwrap()
    }

    /// The end-to-end loopback acceptance path: a netio server on an
    /// ephemeral port answers a mixed closed-loop load with zero losses,
    /// and the generator's books balance against the server's counters.
    #[test]
    fn loopback_blast_answers_everything() {
        let zones = Arc::new(vec![test_domain_zone(&origin(), 2)]);
        let handle = serve(ServeConfig::new("127.0.0.1:0", "FRA", zones).threads(3)).unwrap();
        let report = blast(
            LoadConfig::new(handle.local_addr(), origin()).concurrency(3).queries(600),
        )
        .unwrap();
        let stats = handle.shutdown();
        assert_eq!(report.sent, 600);
        assert!(report.all_answered(), "{report:?}");
        report.check_server_stats(stats).unwrap();
        assert!(stats.answers > 0, "probe TXT answers present");
        assert!(report.qps() > 0.0);
        assert!(report.latency_percentile(0.5).unwrap() <= report.latency_percentile(0.99).unwrap());
    }

    /// Probe-only mix: every single response is a positive answer.
    #[test]
    fn probe_only_mix_yields_only_answers() {
        let zones = Arc::new(vec![test_domain_zone(&origin(), 2)]);
        let handle = serve(ServeConfig::new("127.0.0.1:0", "SYD", zones).threads(2)).unwrap();
        let report = blast(
            LoadConfig::new(handle.local_addr(), origin())
                .concurrency(2)
                .queries(200)
                .mix(QueryMix::probe_only()),
        )
        .unwrap();
        let stats = handle.shutdown();
        assert!(report.all_answered(), "{report:?}");
        assert_eq!(stats.answers, 200);
        assert_eq!(stats.queries, 200);
    }

    #[test]
    fn metered_blast_counts_into_the_registry() {
        let zones = Arc::new(vec![test_domain_zone(&origin(), 2)]);
        let registry = Arc::new(Registry::new());
        let handle = serve(ServeConfig::new("127.0.0.1:0", "FRA", zones).threads(2)).unwrap();
        let report = blast(
            LoadConfig::new(handle.local_addr(), origin())
                .concurrency(2)
                .queries(200)
                .metrics(Arc::clone(&registry)),
        )
        .unwrap();
        handle.shutdown();
        assert!(report.all_answered(), "{report:?}");
        assert_eq!(registry.counters("dnswild_load_sent_total")[0].1, 200);
        assert_eq!(registry.counters("dnswild_load_answered_total")[0].1, 200);
        assert_eq!(registry.counters("dnswild_load_timeouts_total")[0].1, 0);
        let (_, hist) = &registry.histograms("dnswild_load_latency_ns")[0];
        assert_eq!(hist.count(), 200);
        assert!(hist.value_at(50.0).unwrap() > 0);
    }

    #[test]
    fn mix_draw_is_deterministic_for_a_seed() {
        let cfg = LoadConfig::new("127.0.0.1:1".parse().unwrap(), origin());
        let qnames = |seed: u64| {
            let mut rng = DetRng::seed_from_u64(seed);
            (0..32u64)
                .map(|n| {
                    let q = next_query(&mut rng, &cfg, 0, n, n as u16);
                    format!("{} {:?}", q.questions[0].qname, q.questions[0].qtype)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(qnames(7), qnames(7));
        assert_ne!(qnames(7), qnames(8));
    }

    #[test]
    fn report_percentiles_and_qps() {
        let report = LoadReport {
            sent: 4,
            received: 4,
            timeouts: 0,
            mismatched: 0,
            elapsed: Duration::from_secs(2),
            latencies_ns: vec![10, 20, 30, 40],
        };
        assert_eq!(report.qps(), 2.0);
        assert_eq!(report.latency_percentile(0.0), Some(10));
        assert_eq!(report.latency_percentile(1.0), Some(40));
        assert!(report.all_answered());
        let bad = ServerStats { queries: 3, ..Default::default() };
        assert!(report.check_server_stats(bad).is_err());
    }
}
