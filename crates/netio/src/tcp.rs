//! The TCP transport plane: truncation fallback that actually
//! completes (RFC 7766).
//!
//! The paper's measurement traffic is UDP, but §6's engineering
//! guidance only works end-to-end if a TC=1 answer has somewhere to
//! go: a recursive that sees the truncation bit retries the same
//! question over TCP, and an authoritative that shirks TCP silently
//! loses exactly the fat-answer tail the EDNS payload negotiation was
//! supposed to protect. This module is the server half of that
//! contract (the client half lives in [`crate::client`]):
//!
//! * **Framing** — RFC 1035 §4.2.2 / RFC 7766 two-byte big-endian
//!   length prefixes. [`write_frame`] emits a frame in one `write_all`
//!   (one segment with Nagle off); [`FrameReader`] is a *resumable*
//!   decoder that survives arbitrary segmentation and read timeouts
//!   mid-frame, so the connection loop can poll the stop flag on a
//!   short socket timeout without ever misparsing a half-arrived
//!   frame.
//! * **Accept loops** — [`serve`](crate::serve) spawns one blocking
//!   accept worker per shard beside the UDP workers, all sharing the
//!   listener via `try_clone` (the kernel wakes one per connection).
//!   Shutdown wakes blocked accepts with throwaway connections.
//! * **Connections** — each accepted stream gets its own thread and its
//!   own forked engine, under a global cap ([`TcpOptions::max_conns`]);
//!   at the cap the stream is closed immediately and counted
//!   ([`TcpConnStats::over_cap`]), never silently queued. Queries are
//!   pipelined per RFC 7766: the loop keeps reading frames and answers
//!   each in arrival order on the same stream.
//! * **Deadlines** — reads poll on the stop interval and enforce
//!   [`TcpOptions::read_timeout`] since the last completed frame, so
//!   both idle connections and slow-loris partial frames are shed;
//!   writes carry [`TcpOptions::write_timeout`], and a blown write
//!   deadline closes the connection (a half-written frame is
//!   unrecoverable).
//!
//! Counters: engine outcomes (including `tcp_queries`) merge into the
//! same per-shard [`AtomicStats`](crate::AtomicStats) cells and
//! registry series as UDP traffic, so the scrape-equals-stats gate
//! holds across transports; connection-plane events (accepted,
//! over-cap, frame errors) land in [`TcpConnStats`] and
//! `dnswild_tcp_events_total`. Stage spans for TCP record into
//! `dnswild_stage_ns{transport="tcp"}`, keeping the unlabelled UDP
//! series comparable with pre-TCP baselines.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dnswild_metrics::{Counter, Registry, Stage, StageClock, StageSpans};
use dnswild_server::{AnswerEngine, TransportKind};
use dnswild_telemetry::Producer;

use crate::server::{
    is_idle_recv, record_server_event, AtomicStats, ServeMetrics, STOP_POLL_INTERVAL,
};

/// Knobs for the TCP listener plane (see [`crate::ServeConfig::tcp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpOptions {
    /// Global cap on concurrently served connections across all accept
    /// workers. Beyond it new connections are closed on accept and
    /// counted in [`TcpConnStats::over_cap`] — shedding beats an
    /// unbounded thread pile-up under a SYN-happy recursive.
    pub max_conns: usize,
    /// How long a connection may sit without completing a frame —
    /// measured from the last completed frame, so it bounds both idle
    /// keep-alive and slow-loris partial frames.
    pub read_timeout: Duration,
    /// Socket write deadline per response frame. A blown deadline
    /// closes the connection (the frame boundary is lost).
    pub write_timeout: Duration,
}

impl Default for TcpOptions {
    fn default() -> TcpOptions {
        TcpOptions {
            max_conns: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Connection-plane counters, outside
/// [`ServerStats`](dnswild_server::ServerStats) (which counts *frames*
/// through the engine; these count *connections* and framing faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpConnStats {
    /// Connections accepted and served.
    pub accepted: u64,
    /// Connections closed immediately because [`TcpOptions::max_conns`]
    /// live connections already existed.
    pub over_cap: u64,
    /// Connections that died inside a frame: EOF or a read deadline
    /// mid-frame, or any socket error while reading — the length-prefix
    /// stream is unrecoverable past that point.
    pub frame_errors: u64,
}

impl std::ops::Add for TcpConnStats {
    type Output = TcpConnStats;
    fn add(self, rhs: TcpConnStats) -> TcpConnStats {
        TcpConnStats {
            accepted: self.accepted + rhs.accepted,
            over_cap: self.over_cap + rhs.over_cap,
            frame_errors: self.frame_errors + rhs.frame_errors,
        }
    }
}

/// Lock-free [`TcpConnStats`] mirror shared by the accept workers and
/// their connection threads.
#[derive(Debug, Default)]
pub struct TcpCounters {
    accepted: AtomicU64,
    over_cap: AtomicU64,
    frame_errors: AtomicU64,
}

impl TcpCounters {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> TcpConnStats {
        TcpConnStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            over_cap: self.over_cap.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
        }
    }
}

/// Registry handles for the connection-plane counters plus the
/// TCP-labelled stage spans. Engine outcome counters are *not* here —
/// the connection loop reuses the shared [`ServeMetrics`] so both
/// transports feed the same `dnswild_server_events_total` series.
pub(crate) struct TcpMetrics {
    accepted: Arc<Counter>,
    over_cap: Arc<Counter>,
    frame_errors: Arc<Counter>,
    pub(crate) spans: Arc<StageSpans>,
}

impl TcpMetrics {
    pub(crate) fn register(registry: &Arc<Registry>, auth: &str) -> TcpMetrics {
        let conn = |kind: &str| {
            registry.counter_with(
                "dnswild_tcp_events_total",
                "TCP transport connection-plane events",
                &[("auth", auth), ("kind", kind)],
            )
        };
        TcpMetrics {
            accepted: conn("accepted"),
            over_cap: conn("over_cap"),
            frame_errors: conn("frame_error"),
            spans: StageSpans::register_labelled(registry, &[("transport", "tcp")]),
        }
    }
}

/// Writes one RFC 7766 frame — two-byte big-endian length then the
/// payload — as a single `write_all` (via `scratch`, reused across
/// frames), so a Nagle-off stream sends it in one segment.
pub fn write_frame(w: &mut impl Write, payload: &[u8], scratch: &mut Vec<u8>) -> io::Result<()> {
    let len = u16::try_from(payload.len()).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidInput, "DNS/TCP frame larger than 65535 bytes")
    })?;
    scratch.clear();
    scratch.extend_from_slice(&len.to_be_bytes());
    scratch.extend_from_slice(payload);
    w.write_all(scratch)
}

/// A resumable RFC 7766 frame decoder.
///
/// `read_frame` may return `WouldBlock`/`TimedOut` (from a socket read
/// timeout) at *any* byte boundary; the partial state is kept and the
/// next call resumes exactly where the stream paused — the
/// property-tested guarantee that arbitrary segmentation and timeout
/// interleavings never shift the frame boundaries. The payload buffer
/// is reused across frames (no per-frame allocation once warm).
#[derive(Debug, Default)]
pub struct FrameReader {
    head: [u8; 2],
    have_head: usize,
    payload: Vec<u8>,
    have: usize,
    complete: bool,
}

impl FrameReader {
    /// An empty decoder.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Whether the stream paused inside a frame — distinguishes an idle
    /// keep-alive connection from a slow-loris half-frame when a read
    /// deadline expires.
    pub fn mid_frame(&self) -> bool {
        !self.complete && (self.have_head > 0 || self.have > 0)
    }

    /// Reads until one whole frame is buffered and returns its payload.
    ///
    /// `Ok(None)` is a clean peer close (EOF exactly on a frame
    /// boundary). EOF anywhere *inside* a frame is
    /// [`io::ErrorKind::UnexpectedEof`]. Timeout-ish errors pass
    /// through with the partial state retained for the next call.
    pub fn read_frame(&mut self, r: &mut impl Read) -> io::Result<Option<&[u8]>> {
        if self.complete {
            self.complete = false;
            self.have_head = 0;
            self.have = 0;
        }
        while self.have_head < 2 {
            match r.read(&mut self.head[self.have_head..2]) {
                Ok(0) if self.have_head == 0 => return Ok(None),
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed inside a frame length prefix",
                    ))
                }
                Ok(n) => self.have_head += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let len = u16::from_be_bytes(self.head) as usize;
        if self.payload.len() < len {
            self.payload.resize(len, 0);
        }
        while self.have < len {
            match r.read(&mut self.payload[self.have..len]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed inside a frame payload",
                    ))
                }
                Ok(n) => self.have += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.complete = true;
        Ok(Some(&self.payload[..len]))
    }
}

/// Everything one accept worker needs, bundled so [`crate::serve`] can
/// move it into the worker thread in one piece.
pub(crate) struct AcceptWorker {
    pub(crate) listener: TcpListener,
    pub(crate) template: AnswerEngine,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) shard: Arc<AtomicStats>,
    pub(crate) counters: Arc<TcpCounters>,
    pub(crate) active: Arc<AtomicUsize>,
    pub(crate) opts: TcpOptions,
    /// The telemetry producer is mutex-shared across this worker's
    /// connection threads: producers own an SPSC ring *registered for
    /// the collector's lifetime*, so one-per-connection would leak a
    /// ring per dialled connection. TCP is the fallback path — the
    /// brief lock around each event record is cheap relative to a
    /// stream round-trip, and the mutex restores the single-producer
    /// guarantee the ring needs.
    pub(crate) trace: Option<(Arc<Mutex<Producer>>, u16)>,
    pub(crate) metrics: Option<(Arc<ServeMetrics>, Arc<TcpMetrics>)>,
}

/// Drops decrement the live-connection gauge however the connection
/// thread exits (including panic unwinds).
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One accept worker: blocking-accept connections off the shared
/// listener, admit them under the global cap, and hand each to its own
/// connection thread. [`crate::ServeHandle::shutdown`] wakes blocked
/// accepts with throwaway connections after raising the stop flag.
pub(crate) fn accept_loop(w: AcceptWorker) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !w.stop.load(Ordering::Relaxed) {
        let (stream, peer) = match w.listener.accept() {
            Ok(ok) => ok,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient accept failures (EMFILE, aborted handshakes):
            // back off one poll interval rather than spinning.
            Err(_) => {
                std::thread::sleep(STOP_POLL_INTERVAL);
                continue;
            }
        };
        if w.stop.load(Ordering::Relaxed) {
            break; // the shutdown wake-up connection
        }
        conns.retain(|h| !h.is_finished());
        // Admission is a CAS loop so two accept workers racing at
        // `max_conns - 1` cannot both get in.
        let admitted = w
            .active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < w.opts.max_conns).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            w.counters.over_cap.fetch_add(1, Ordering::Relaxed);
            if let Some((_, tm)) = &w.metrics {
                tm.over_cap.inc();
            }
            continue; // dropping the stream closes it
        }
        let guard = ActiveGuard(Arc::clone(&w.active));
        w.counters.accepted.fetch_add(1, Ordering::Relaxed);
        if let Some((_, tm)) = &w.metrics {
            tm.accepted.inc();
        }
        let mut engine = w.template.fork();
        let stop = Arc::clone(&w.stop);
        let shard = Arc::clone(&w.shard);
        let counters = Arc::clone(&w.counters);
        let opts = w.opts;
        let trace = w.trace.as_ref().map(|(p, id)| (Arc::clone(p), *id));
        let metrics = w.metrics.as_ref().map(|(sm, tm)| (Arc::clone(sm), Arc::clone(tm)));
        let spawned = std::thread::Builder::new().name("netio-tcp-conn".into()).spawn(move || {
            let _guard = guard;
            connection_loop(stream, peer, &mut engine, &stop, &shard, &counters, &opts, trace, metrics);
        });
        match spawned {
            Ok(h) => conns.push(h),
            Err(_) => { /* guard inside the closure was moved; on spawn
                         * failure the closure is dropped and the guard
                         * releases the slot */ }
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Serves one connection until the peer closes, a deadline fires, the
/// stream errors, or the plane stops. Frames are answered in arrival
/// order on the same stream (RFC 7766 pipelining).
#[allow(clippy::too_many_arguments)] // one flat call per connection; mirrors the UDP worker shape
fn connection_loop(
    mut stream: TcpStream,
    peer: SocketAddr,
    engine: &mut AnswerEngine,
    stop: &AtomicBool,
    shard: &AtomicStats,
    counters: &TcpCounters,
    opts: &TcpOptions,
    trace: Option<(Arc<Mutex<Producer>>, u16)>,
    metrics: Option<(Arc<ServeMetrics>, Arc<TcpMetrics>)>,
) {
    // One-segment frames (write_frame is a single buffered write).
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(STOP_POLL_INTERVAL)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(opts.write_timeout));
    let frame_error = |n: u64| {
        counters.frame_errors.fetch_add(n, Ordering::Relaxed);
        if let Some((_, tm)) = &metrics {
            tm.frame_errors.add(n);
        }
    };
    let mut reader = FrameReader::new();
    let mut resp_buf = Vec::with_capacity(1024);
    let mut scratch = Vec::with_capacity(1024);
    let spans = metrics.as_ref().map(|(_, tm)| &*tm.spans);
    let mut clock = StageClock::start(spans.is_some());
    let mut last_frame = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        clock.reset();
        let payload = match reader.read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => break, // clean close on a frame boundary
            Err(e) if is_idle_recv(&e) => {
                if last_frame.elapsed() >= opts.read_timeout {
                    // Deadline: an idle keep-alive is shed silently, a
                    // half-frame (slow-loris or stalled sender) is a
                    // framing fault.
                    if reader.mid_frame() {
                        frame_error(1);
                    }
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Mid-frame EOF, a reset, or any other stream error.
                frame_error(1);
                break;
            }
        };
        last_frame = Instant::now();
        clock.lap(spans, Stage::Recv);
        let start_ns = trace.as_ref().map(|(p, _)| p.lock().unwrap().now_ns());
        let handled =
            engine.handle_packet_spanned(payload, TransportKind::Tcp, &mut resp_buf, spans);
        if handled.decode_error {
            shard.record_decode_error();
            if let Some((sm, _)) = &metrics {
                sm.decode_errors.inc();
            }
        }
        let mut send_ok = false;
        if handled.response {
            clock.reset();
            send_ok = write_frame(&mut stream, &resp_buf, &mut scratch).is_ok();
            if !send_ok {
                shard.record_send_error();
                if let Some((sm, _)) = &metrics {
                    sm.send_errors.inc();
                }
            }
            clock.lap(spans, Stage::Send);
        }
        if let (Some((producer, auth_id)), Some(start_ns)) = (&trace, start_ns) {
            let p = producer.lock().unwrap();
            record_server_event(
                &p,
                *auth_id,
                &handled,
                payload,
                &peer,
                resp_buf.len(),
                send_ok,
                start_ns,
                TransportKind::Tcp,
            );
        }
        // Same one-delta-two-destinations flush as the UDP loops: the
        // shard cell and the registry counters cannot drift.
        let delta = engine.take_stats();
        if let Some((sm, _)) = &metrics {
            sm.record(&delta);
        }
        shard.merge(delta);
        if handled.response && !send_ok {
            break; // a half-written frame poisons the stream
        }
    }
    let delta = engine.take_stats();
    if let Some((sm, _)) = &metrics {
        sm.record(&delta);
    }
    shard.merge(delta);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip_including_empty() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        write_frame(&mut wire, b"hello dns", &mut scratch).unwrap();
        write_frame(&mut wire, b"", &mut scratch).unwrap();
        write_frame(&mut wire, &[0xab; 300], &mut scratch).unwrap();
        let mut r = FrameReader::new();
        let mut c = Cursor::new(wire);
        assert_eq!(r.read_frame(&mut c).unwrap().unwrap(), b"hello dns");
        assert_eq!(r.read_frame(&mut c).unwrap().unwrap(), b"");
        assert_eq!(r.read_frame(&mut c).unwrap().unwrap(), &[0xab; 300][..]);
        assert!(r.read_frame(&mut c).unwrap().is_none(), "clean EOF on the boundary");
        assert!(!r.mid_frame());
    }

    #[test]
    fn oversized_frame_is_refused_on_write() {
        let mut sink = Vec::new();
        let mut scratch = Vec::new();
        let err = write_frame(&mut sink, &vec![0u8; 65536], &mut scratch).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "nothing hits the wire");
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        // Inside the length prefix.
        let mut r = FrameReader::new();
        let err = r.read_frame(&mut Cursor::new(vec![0x00])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Inside the payload.
        let mut r = FrameReader::new();
        let mut c = Cursor::new(vec![0x00, 0x05, b'x']);
        let err = r.read_frame(&mut c).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(r.mid_frame());
    }

    /// A reader that hands out a scripted byte stream in scripted chunk
    /// sizes with scripted timeouts in between — the adversarial
    /// segmentation the resumable decoder must survive.
    struct Chopped {
        data: Vec<u8>,
        at: usize,
        script: Vec<usize>, // 0 = WouldBlock, n = serve up to n bytes
    }

    impl Read for Chopped {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let step = if self.script.is_empty() { usize::MAX } else { self.script.remove(0) };
            if step == 0 {
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            let n = step.min(buf.len()).min(self.data.len() - self.at);
            buf[..n].copy_from_slice(&self.data[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn qc_reader_survives_any_segmentation_and_timeout_interleaving() {
        detrand::qc::property("netio/tcp-frame-reader-resumable").cases(512).check(|g| {
            // A handful of frames with varied sizes (incl. empty).
            let frames: Vec<Vec<u8>> = (0..g.usize_in(1..6))
                .map(|_| (0..g.usize_in(0..600)).map(|_| g.u8()).collect())
                .collect();
            let mut data = Vec::new();
            let mut scratch = Vec::new();
            for f in &frames {
                write_frame(&mut data, f, &mut scratch).unwrap();
            }
            let script: Vec<usize> = (0..g.usize_in(0..64)).map(|_| g.usize_in(0..9)).collect();
            let mut src = Chopped { data, at: 0, script };
            let mut reader = FrameReader::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            loop {
                match reader.read_frame(&mut src) {
                    Ok(Some(p)) => got.push(p.to_vec()),
                    Ok(None) => break,
                    Err(e) if is_idle_recv(&e) => continue, // state retained, resume
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            assert_eq!(got, frames, "frame boundaries shifted under segmentation");
        });
    }

    #[test]
    fn tcp_conn_stats_add_and_snapshot() {
        let c = TcpCounters::default();
        c.accepted.fetch_add(2, Ordering::Relaxed);
        c.over_cap.fetch_add(1, Ordering::Relaxed);
        c.frame_errors.fetch_add(3, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s, TcpConnStats { accepted: 2, over_cap: 1, frame_errors: 3 });
        let sum = s + s;
        assert_eq!(sum.accepted, 4);
        assert_eq!(sum.over_cap, 2);
        assert_eq!(sum.frame_errors, 6);
    }
}
