//! The adversarial workload generator.
//!
//! Mirrors the closed-loop discipline of [`crate::load`] — one
//! outstanding query per socket, per-thread `detrand` streams — but
//! draws *attack* traffic against the preset adversarial zone
//! ([`dnswild_zone::presets::attack_test_domain_zone`]):
//!
//! * [`AttackMode::NxdomainFlood`] — random-subdomain "water torture":
//!   unique labels under the `void` anchor, every one an honest
//!   NXDOMAIN, the classic cache-busting flood recursives relay at
//!   authoritatives.
//! * [`AttackMode::NxnsReferral`] — NXNSAttack-style delegation
//!   amplification: tiny queries below the fattened `lab` cut, each
//!   pulling a referral carrying the full NS+glue set (the generator
//!   advertises EDNS 4096 so the fat referral is not truncated away).
//! * [`AttackMode::SpoofedBurst`] — the same flood multiplexed over a
//!   pool of ephemeral-port sockets per thread, standing in for spoofed
//!   sources: with `key_ports` keying on the server, each port is a
//!   distinct rate-limit identity, which is exactly the evasion RRL's
//!   prefix aggregation is designed to blunt.
//!
//! Schedules are pure functions of ([`AttackConfig::seed`], thread,
//! sequence number) — two runs with one seed offer byte-identical
//! query streams, which is what lets the attack smoke gate diff its
//! output lines across runs like the chaos gate does.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

use detrand::{splitmix64, DetRng, Rng};
use dnswild_proto::{Message, Name, RType};
use dnswild_server::ServerStats;
use dnswild_telemetry::{
    journey_from_payload, qname_hash32, Collector, Event, EventKind, FLAG_ATTACK, FLAG_RESPONSE,
    FLAG_TC_SEEN, FLAG_TIMEOUT, RCODE_NONE,
};
use dnswild_zone::presets::{DELEGATION_LABEL, NX_ANCHOR_LABEL};

/// EDNS payload size the NXNS mode advertises, so the padded referral
/// rides back whole instead of as a TC stub.
pub const NXNS_EDNS_PAYLOAD: u16 = 4096;

/// Which adversarial workload the generator offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackMode {
    /// Random-subdomain NXDOMAIN flood under the `void` anchor.
    NxdomainFlood,
    /// Delegation-amplification replay below the `lab` cut.
    NxnsReferral,
    /// [`AttackMode::NxdomainFlood`] multiplexed over a per-thread pool
    /// of ephemeral-port sockets (spoofed-source stand-in).
    SpoofedBurst,
}

impl AttackMode {
    /// The CLI / log spelling.
    pub fn name(self) -> &'static str {
        match self {
            AttackMode::NxdomainFlood => "nxdomain",
            AttackMode::NxnsReferral => "nxns",
            AttackMode::SpoofedBurst => "spoof",
        }
    }
}

impl std::str::FromStr for AttackMode {
    type Err = String;
    fn from_str(s: &str) -> Result<AttackMode, String> {
        match s {
            "nxdomain" => Ok(AttackMode::NxdomainFlood),
            "nxns" => Ok(AttackMode::NxnsReferral),
            "spoof" => Ok(AttackMode::SpoofedBurst),
            other => Err(format!("unknown attack mode '{other}' (nxdomain|nxns|spoof)")),
        }
    }
}

/// Configuration for [`assault`].
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// The server under attack.
    pub target: SocketAddr,
    /// Zone origin the attack names hang off.
    pub origin: Name,
    /// Which workload to offer.
    pub mode: AttackMode,
    /// Attacker threads, each an independent closed loop.
    pub concurrency: usize,
    /// Total queries across all threads.
    pub queries: u64,
    /// Per-query response timeout. Deliberately short by default: a
    /// rate-limited drop *is* the expected server behaviour, and the
    /// attacker's loop must classify it quickly and move on.
    pub timeout: Duration,
    /// Base seed for the deterministic name/socket draws.
    pub seed: u64,
    /// Socket-pool size per thread for [`AttackMode::SpoofedBurst`]
    /// (ignored by the other modes, which use one socket per thread).
    pub spoofed_sources: usize,
    /// Telemetry collector: when set, each transaction records one
    /// `ClientQuery` event flagged [`FLAG_ATTACK`], which is how the
    /// trace analysis separates attacker packets from legitimate ones.
    pub collector: Option<Arc<Collector>>,
    /// `auth_id` stamped on recorded events.
    pub trace_auth_id: u16,
}

impl AttackConfig {
    /// Defaults: 4 threads, 1,000 queries, 250 ms timeout, seed 2017,
    /// 16 spoofed sources per thread.
    pub fn new(target: SocketAddr, origin: Name, mode: AttackMode) -> Self {
        AttackConfig {
            target,
            origin,
            mode,
            concurrency: 4,
            queries: 1_000,
            timeout: Duration::from_millis(250),
            seed: 2017,
            spoofed_sources: 16,
            collector: None,
            trace_auth_id: 0,
        }
    }

    /// Overrides the thread count.
    pub fn concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = concurrency.max(1);
        self
    }

    /// Overrides the total query count.
    pub fn queries(mut self, queries: u64) -> Self {
        self.queries = queries;
        self
    }

    /// Overrides the per-query timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Overrides the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the spoofed-source pool size (clamped to at least 1).
    pub fn spoofed_sources(mut self, sources: usize) -> Self {
        self.spoofed_sources = sources.max(1);
        self
    }

    /// Attaches a telemetry collector (see [`AttackConfig::collector`]).
    pub fn collector(mut self, collector: Arc<Collector>, auth_id: u16) -> Self {
        self.collector = Some(collector);
        self.trace_auth_id = auth_id;
        self
    }
}

/// What one attack run measured, from the attacker's side of the wire.
#[derive(Debug, Clone, Default)]
pub struct AttackReport {
    /// Queries sent.
    pub sent: u64,
    /// Responses received with the expected transaction ID (full
    /// answers, referrals and TC=1 slips alike).
    pub received: u64,
    /// Queries that saw nothing within the timeout — under RRL these
    /// are the limiter's drops.
    pub timeouts: u64,
    /// Responses discarded for carrying a stale/unexpected ID.
    pub mismatched: u64,
    /// Received responses carrying TC=1 — the limiter's 1-in-N slips
    /// (or genuine size truncation, which the attack zones avoid).
    pub tc_slips: u64,
    /// Query bytes put on the wire.
    pub bytes_sent: u64,
    /// Response bytes taken off the wire.
    pub bytes_received: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl AttackReport {
    /// Bytes-out-over-bytes-in as seen by the attacker: the bandwidth
    /// amplification the server granted this workload. `None` until
    /// something was sent.
    pub fn amplification(&self) -> Option<f64> {
        (self.bytes_sent > 0).then(|| self.bytes_received as f64 / self.bytes_sent as f64)
    }

    /// Every datagram is accounted for: answered, slipped or timed out,
    /// with nothing mismatched.
    pub fn all_accounted(&self) -> bool {
        self.received + self.timeouts == self.sent && self.mismatched == 0
    }

    /// Checks the attacker's books against the server's counters when
    /// the attack ran *alone*: every sent packet was counted as a
    /// query, every timeout was one of the limiter's drops.
    pub fn check_server_stats(&self, stats: ServerStats) -> Result<(), String> {
        if stats.queries != self.sent {
            return Err(format!(
                "server counted {} queries, attacker sent {}",
                stats.queries, self.sent
            ));
        }
        if stats.rrl_dropped != self.timeouts {
            return Err(format!(
                "server dropped {} responses, attacker timed out {} times",
                stats.rrl_dropped, self.timeouts
            ));
        }
        if stats.rrl_slipped != self.tc_slips {
            return Err(format!(
                "server slipped {} responses, attacker saw {} TC replies",
                stats.rrl_slipped, self.tc_slips
            ));
        }
        Ok(())
    }

    /// The deterministic one-line summary the smoke gate diffs across
    /// runs (everything wall-clock-dependent is excluded).
    pub fn render(&self, label: &str) -> String {
        format!(
            "{label}: sent={} received={} timeouts={} mismatched={} tc_slips={} \
             bytes_sent={} bytes_received={}",
            self.sent,
            self.received,
            self.timeouts,
            self.mismatched,
            self.tc_slips,
            self.bytes_sent,
            self.bytes_received,
        )
    }
}

/// One thread's tally, folded into the [`AttackReport`].
#[derive(Debug, Default)]
struct AttackTally {
    sent: u64,
    received: u64,
    timeouts: u64,
    mismatched: u64,
    tc_slips: u64,
    bytes_sent: u64,
    bytes_received: u64,
}

/// Builds the `n`-th attack query for `thread` — a pure function of
/// (seed stream, mode), so schedules replay byte-identically.
fn attack_query(rng: &mut DetRng, config: &AttackConfig, id: u16) -> Message {
    match config.mode {
        AttackMode::NxdomainFlood | AttackMode::SpoofedBurst => {
            let label = format!("wt{:08x}", rng.gen_range(0..u64::from(u32::MAX)) as u32);
            let qname = config
                .origin
                .prepend(NX_ANCHOR_LABEL)
                .and_then(|n| n.prepend(&label))
                .expect("short water-torture label");
            Message::iterative_query(id, qname, RType::A)
        }
        AttackMode::NxnsReferral => {
            let label = format!("v{:08x}", rng.gen_range(0..u64::from(u32::MAX)) as u32);
            let qname = config
                .origin
                .prepend(DELEGATION_LABEL)
                .and_then(|n| n.prepend(&label))
                .expect("short delegation label");
            let mut q = Message::iterative_query(id, qname, RType::A);
            // Replace the default OPT advertisement (a second OPT would
            // be a FORMERR) with one wide enough for the fat referral.
            q.additionals.clear();
            q.add_edns(NXNS_EDNS_PAYLOAD);
            q
        }
    }
}

/// Runs the adversarial workload; blocks until every thread finishes.
pub fn assault(config: AttackConfig) -> io::Result<AttackReport> {
    let threads = config.concurrency.max(1);
    let start = Instant::now();
    let mut tallies: Vec<io::Result<AttackTally>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let share = config.queries / threads as u64
                + u64::from((t as u64) < config.queries % threads as u64);
            let cfg = &config;
            handles.push(scope.spawn(move || attacker_loop(cfg, t, share)));
        }
        for h in handles {
            tallies.push(h.join().expect("attack worker panicked"));
        }
    });
    let elapsed = start.elapsed();

    let mut report = AttackReport { elapsed, ..Default::default() };
    for tally in tallies {
        let tally = tally?;
        report.sent += tally.sent;
        report.received += tally.received;
        report.timeouts += tally.timeouts;
        report.mismatched += tally.mismatched;
        report.tc_slips += tally.tc_slips;
        report.bytes_sent += tally.bytes_sent;
        report.bytes_received += tally.bytes_received;
    }
    Ok(report)
}

/// One closed-loop attacker thread.
fn attacker_loop(config: &AttackConfig, thread: usize, queries: u64) -> io::Result<AttackTally> {
    let bind_addr: SocketAddr = if config.target.is_ipv4() {
        "0.0.0.0:0".parse().unwrap()
    } else {
        "[::]:0".parse().unwrap()
    };
    let pool = if config.mode == AttackMode::SpoofedBurst { config.spoofed_sources.max(1) } else { 1 };
    let mut sockets = Vec::with_capacity(pool);
    for _ in 0..pool {
        let socket = UdpSocket::bind(bind_addr)?;
        socket.connect(config.target)?;
        socket.set_read_timeout(Some(config.timeout))?;
        sockets.push(socket);
    }

    let mut rng = DetRng::seed_from_u64(
        config.seed ^ (thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let mut send_buf = Vec::with_capacity(512);
    let mut recv_buf = vec![0u8; 4096];
    let mut tally = AttackTally::default();
    let producer = config.collector.as_ref().map(|c| c.producer());
    let client_token =
        splitmix64(0x6174_746b ^ (thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));

    for n in 0..queries {
        let id = (n % u64::from(u16::MAX)) as u16;
        let query = attack_query(&mut rng, config, id);
        // The socket draw is part of the deterministic schedule too:
        // made for every query (not just spoof mode) so a mode's name
        // stream does not shift when the pool size changes.
        let socket = &sockets[rng.gen_range(0..pool as u64) as usize];
        query
            .encode_into(&mut send_buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e:?}")))?;
        let sent_at = Instant::now();
        let deadline = sent_at + config.timeout;
        let sent_ns = producer.as_ref().map(|p| p.now_ns());
        socket.send(&send_buf)?;
        tally.sent += 1;
        tally.bytes_sent += send_buf.len() as u64;
        let mut resp_len = 0usize;
        let mut tc_seen = false;
        let answered = loop {
            match socket.recv(&mut recv_buf) {
                Ok(got) => {
                    if got >= 2 && u16::from_be_bytes([recv_buf[0], recv_buf[1]]) == id {
                        tally.received += 1;
                        tally.bytes_received += got as u64;
                        // TC lives in bit 1 of byte 2.
                        tc_seen = got >= 3 && recv_buf[2] & 0x02 != 0;
                        if tc_seen {
                            tally.tc_slips += 1;
                        }
                        resp_len = got;
                        break true;
                    }
                    tally.mismatched += 1;
                    if Instant::now() >= deadline {
                        tally.timeouts += 1;
                        break false;
                    }
                }
                Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                    tally.timeouts += 1;
                    break false;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        if let (Some(producer), Some(sent_ns)) = (&producer, sent_ns) {
            let mut ev = Event::new(EventKind::ClientQuery);
            ev.ts_ns = sent_ns;
            ev.client_hash = client_token;
            ev.qname_hash = qname_hash32(send_buf.get(12..).unwrap_or(&[]));
            (ev.journey, ev.dns_id) = journey_from_payload(&send_buf);
            ev.latency_ns =
                u32::try_from(producer.now_ns().saturating_sub(sent_ns)).unwrap_or(u32::MAX);
            ev.auth_id = config.trace_auth_id;
            ev.bytes_in = u16::try_from(send_buf.len()).unwrap_or(u16::MAX);
            ev.bytes_out = u16::try_from(resp_len).unwrap_or(u16::MAX);
            ev.flags = FLAG_ATTACK
                | if answered { FLAG_RESPONSE } else { FLAG_TIMEOUT }
                | (u16::from(tc_seen) * FLAG_TC_SEEN);
            ev.rcode = if answered && resp_len >= 4 { recv_buf[3] & 0x0f } else { RCODE_NONE };
            producer.record(&ev);
        }
    }
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServeConfig};
    use dnswild_server::{RateLimitPolicy, RrlScope, TruncationPolicy};
    use dnswild_zone::presets::attack_test_domain_zone;

    fn origin() -> Name {
        Name::parse("ourtestdomain.nl").unwrap()
    }

    fn attack_zone(delegation_ns: usize) -> Arc<Vec<dnswild_zone::Zone>> {
        Arc::new(vec![attack_test_domain_zone(&origin(), 2, delegation_ns)])
    }

    #[test]
    fn attack_schedules_replay_byte_identically_per_seed() {
        let cfg = |seed| {
            AttackConfig::new("127.0.0.1:1".parse().unwrap(), origin(), AttackMode::NxdomainFlood)
                .seed(seed)
        };
        let qnames = |seed: u64| {
            let cfg = cfg(seed);
            let mut rng = DetRng::seed_from_u64(seed);
            (0..32u64)
                .map(|n| attack_query(&mut rng, &cfg, n as u16).questions[0].qname.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(qnames(2017), qnames(2017));
        assert_ne!(qnames(2017), qnames(2018));
        // Every water-torture name sits under the NXDOMAIN anchor.
        assert!(qnames(2017)
            .iter()
            .all(|q| q.trim_end_matches('.').ends_with("void.ourtestdomain.nl")));
    }

    #[test]
    fn nxdomain_flood_is_all_nxdomains_without_rrl() {
        let handle =
            serve(ServeConfig::new("127.0.0.1:0", "FRA", attack_zone(2)).threads(2)).unwrap();
        let report = assault(
            AttackConfig::new(handle.local_addr(), origin(), AttackMode::NxdomainFlood)
                .concurrency(2)
                .queries(200),
        )
        .unwrap();
        let stats = handle.shutdown();
        assert_eq!(report.sent, 200);
        assert!(report.all_accounted(), "{report:?}");
        assert_eq!(report.received, 200, "no limiter, so every flood query is answered");
        assert_eq!(report.tc_slips, 0);
        assert_eq!(stats.nxdomain, 200, "every water-torture name is an honest NXDOMAIN");
    }

    #[test]
    fn nxns_referrals_amplify_without_rrl() {
        let zones = attack_zone(20);
        let handle = serve(
            ServeConfig::new("127.0.0.1:0", "FRA", zones)
                .threads(2)
                .truncation(TruncationPolicy::symmetric(4096)),
        )
        .unwrap();
        let report = assault(
            AttackConfig::new(handle.local_addr(), origin(), AttackMode::NxnsReferral)
                .concurrency(2)
                .queries(100),
        )
        .unwrap();
        let stats = handle.shutdown();
        assert!(report.all_accounted(), "{report:?}");
        assert_eq!(report.received, 100);
        assert_eq!(stats.referrals, 100);
        assert_eq!(report.tc_slips, 0, "EDNS 4096 keeps the fat referral un-truncated");
        let amp = report.amplification().unwrap();
        assert!(amp > 4.0, "20-NS referral should amplify well past 4x, got {amp:.2}");
    }

    #[test]
    fn rrl_turns_flood_into_slips_and_timeouts_that_balance() {
        // One attacker thread and socket → one bucket; no refill, so
        // past the burst every response is limited and the attacker's
        // books must mirror the limiter's counters exactly.
        let policy = RateLimitPolicy {
            burst: 10,
            rate: 0,
            period: 1,
            slip: 2,
            scope: RrlScope::Abusive,
            ..RateLimitPolicy::default()
        };
        let handle = serve(
            ServeConfig::new("127.0.0.1:0", "FRA", attack_zone(2))
                .threads(1)
                .rate_limit(policy),
        )
        .unwrap();
        let report = assault(
            AttackConfig::new(handle.local_addr(), origin(), AttackMode::NxdomainFlood)
                .concurrency(1)
                .queries(60)
                .timeout(Duration::from_millis(40)),
        )
        .unwrap();
        let stats = handle.shutdown();
        assert!(report.all_accounted(), "{report:?}");
        // 10 answered on the burst, then 50 limited: drop/slip
        // alternating from drop → 25 slips, 25 drops.
        assert_eq!(report.tc_slips, 25);
        assert_eq!(report.timeouts, 25);
        assert_eq!(report.received, 35);
        report.check_server_stats(stats).unwrap();
        assert_eq!(stats.nxdomain, 60, "classification happens before enforcement");
    }

    #[test]
    fn spoofed_burst_multiplexes_ports_but_prefix_keying_still_aggregates() {
        // With prefix keying (key_ports=false, the default) the whole
        // spoofed pool shares one bucket: the port rotation buys the
        // attacker nothing, which is RRL's design point.
        let policy =
            RateLimitPolicy { burst: 8, rate: 0, period: 1, slip: 0, ..RateLimitPolicy::default() };
        let handle = serve(
            ServeConfig::new("127.0.0.1:0", "FRA", attack_zone(2))
                .threads(1)
                .rate_limit(policy),
        )
        .unwrap();
        let report = assault(
            AttackConfig::new(handle.local_addr(), origin(), AttackMode::SpoofedBurst)
                .concurrency(1)
                .queries(24)
                .spoofed_sources(8)
                .timeout(Duration::from_millis(40)),
        )
        .unwrap();
        let stats = handle.shutdown();
        assert!(report.all_accounted(), "{report:?}");
        assert_eq!(report.received, 8, "one shared bucket across all 8 source ports");
        assert_eq!(report.timeouts, 16, "slip=0 never slips: the rest are silent drops");
        assert_eq!(stats.rrl_dropped, 16);
        assert_eq!(stats.bucket_evictions, 0);
    }

    #[test]
    fn attack_mode_names_round_trip() {
        for mode in [AttackMode::NxdomainFlood, AttackMode::NxnsReferral, AttackMode::SpoofedBurst] {
            assert_eq!(mode.name().parse::<AttackMode>().unwrap(), mode);
        }
        assert!("slowloris".parse::<AttackMode>().is_err());
    }
}
