//! Response-rate limiting: per-client token buckets, BIND-style RRL
//! slip answers, and a per-site NXDOMAIN budget.
//!
//! The paper's §7 warning — recursive retry machinery multiplies load
//! on authoritative servers — turns hostile in NXNSAttack and the
//! random-subdomain "water torture" floods: a spoofed or hijacked
//! client bank can make an authoritative amplify and reflect. The
//! classic defense (Vixie/Schryver RRL, deployed in BIND and NSD)
//! rate-limits *responses* per client prefix and answers a configurable
//! 1-in-N of the limited ones with a truncated (TC=1) reply, so a
//! *legitimate* recursive behind the limited prefix still gets through
//! by retrying over TCP — which a spoofed source cannot do.
//!
//! Determinism contract: buckets refill in **request ticks**, not
//! wall-clock time. Every charged query advances the bucket by
//! `rate/period` tokens (fractional part carried exactly in integer
//! arithmetic), so the verdict for the n-th charged query of a key is a
//! pure function of `(policy, n)` — independent of timing, thread
//! scheduling and interleaving with other keys. That is what lets the
//! attack gates replay byte-identically across runs, the same property
//! the chaos proxy's seeded fault schedule has.
//!
//! The per-site NXDOMAIN budget is a second, site-global bucket charged
//! only by NXDOMAIN responses that already passed their per-client
//! bucket; its verdict sequence is therefore a pure function of the
//! count of such key-passes, again interleaving-independent.

use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr};
use std::sync::{Arc, Mutex};

use dnswild_metrics::{LogHistogram, Registry};

/// What the rate limiter decided to do with one chargeable response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrlVerdict {
    /// Within budget: send the real response.
    Answer,
    /// Limited, but this is the 1-in-`slip` response that goes out as a
    /// minimal TC=1 reply inviting a TCP retry.
    Slip,
    /// Limited: send nothing.
    Drop,
}

impl RrlVerdict {
    /// The `verdict` label value used in the registry.
    pub fn name(self) -> &'static str {
        match self {
            RrlVerdict::Answer => "answer",
            RrlVerdict::Slip => "slip",
            RrlVerdict::Drop => "drop",
        }
    }
}

/// All three verdicts, in severity order.
pub const VERDICTS: [RrlVerdict; 3] = [RrlVerdict::Answer, RrlVerdict::Slip, RrlVerdict::Drop];

/// Which responses are charged against the client's bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrlScope {
    /// Charge only the response classes attacks monetise — NXDOMAIN,
    /// referrals and REFUSED. Positive answers, NODATA and CHAOS flow
    /// free, so a legitimate mix keeps 100% goodput under any policy.
    Abusive,
    /// Charge every proper question (classic RRL). Needed when positive
    /// answers themselves are the amplification vector.
    All,
}

/// Rate-limiting policy: per-client token buckets plus a site-wide
/// NXDOMAIN budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitPolicy {
    /// Bucket capacity: chargeable responses a fresh client may burst
    /// before the refill rate takes over.
    pub burst: u32,
    /// Tokens refilled per `period` charged queries (steady-state pass
    /// ratio is `rate/period` for a hammering key).
    pub rate: u32,
    /// Charged queries per refill batch (0 is treated as 1).
    pub period: u32,
    /// Answer 1-in-`slip` limited responses with TC=1 instead of
    /// dropping (0 = never slip, 1 = always slip).
    pub slip: u32,
    /// Site-wide NXDOMAIN bucket capacity (0 = no NXDOMAIN budget).
    pub nxdomain_budget: u32,
    /// Which response classes are charged.
    pub scope: RrlScope,
    /// Maximum tracked client buckets before LRU eviction.
    pub max_buckets: usize,
    /// IPv4 prefix length clients are aggregated on (BIND default /24).
    pub prefix_v4: u8,
    /// IPv6 prefix length clients are aggregated on (BIND default /56).
    pub prefix_v6: u8,
    /// Mix the source port into the client key. On loopback every
    /// client shares 127.0.0.1, so the attack harness uses ephemeral
    /// ports as its spoofed-source dimension; real deployments keep
    /// this off and aggregate by prefix only.
    pub key_ports: bool,
}

impl Default for RateLimitPolicy {
    fn default() -> Self {
        RateLimitPolicy {
            burst: 50,
            rate: 1,
            period: 8,
            slip: 2,
            nxdomain_budget: 0,
            scope: RrlScope::Abusive,
            max_buckets: 4096,
            prefix_v4: 24,
            prefix_v6: 56,
            key_ports: false,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RateLimitPolicy {
    /// The bucket key for a client address: a hash of the
    /// prefix-masked source IP (ports mixed in iff `key_ports`).
    /// Aggregating on a prefix is what makes RRL robust against one
    /// attacker rotating through a /24 of spoofed sources.
    pub fn client_key(&self, addr: &SocketAddr) -> u64 {
        let mut h = match addr.ip() {
            IpAddr::V4(ip) => {
                let prefix = u32::from(self.prefix_v4.min(32));
                let mask = if prefix == 0 { 0 } else { u32::MAX << (32 - prefix) };
                splitmix64(0x7272_6c34 ^ u64::from(u32::from_be_bytes(ip.octets()) & mask))
            }
            IpAddr::V6(ip) => {
                let prefix = u32::from(self.prefix_v6.min(128));
                let mask = if prefix == 0 { 0 } else { u128::MAX << (128 - prefix) };
                let bits = u128::from_be_bytes(ip.octets()) & mask;
                splitmix64(splitmix64(0x7272_6c36 ^ (bits >> 64) as u64) ^ bits as u64)
            }
        };
        if self.key_ports {
            h = splitmix64(h ^ u64::from(addr.port()));
        }
        h
    }
}

/// One token bucket: integer tokens plus an exact fractional-refill
/// accumulator (`frac/period` tokens pending), a slip sequence counter
/// and an LRU stamp.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: u64,
    frac: u64,
    slip_seq: u64,
    last_use: u64,
}

impl Bucket {
    fn full(cap: u32) -> Bucket {
        Bucket { tokens: u64::from(cap), frac: 0, slip_seq: 0, last_use: 0 }
    }

    /// One request tick: accrue `rate/period` of a token, exactly.
    fn refill(&mut self, rate: u32, period: u64, cap: u32) {
        self.frac += u64::from(rate);
        if self.frac >= period {
            self.tokens = (self.tokens + self.frac / period).min(u64::from(cap));
            self.frac %= period;
        }
    }

    /// Consumes one token if available.
    fn take(&mut self) -> bool {
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Slip-or-drop for a limited response: every `slip`-th limited
    /// response of this bucket slips out as TC=1.
    fn limited(&mut self, slip: u32) -> RrlVerdict {
        self.slip_seq += 1;
        if slip != 0 && self.slip_seq.is_multiple_of(u64::from(slip)) {
            RrlVerdict::Slip
        } else {
            RrlVerdict::Drop
        }
    }
}

/// What one [`RateLimiter::verdict`] call decided, plus whether making
/// room for the key evicted another bucket (the caller's
/// `bucket_evictions` counter feed — returned rather than accumulated
/// here so per-shard stats stay additive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrlDecision {
    /// Answer, slip or drop.
    pub verdict: RrlVerdict,
    /// An LRU bucket was evicted to admit this key.
    pub evicted: bool,
}

/// The RRL state machine: per-client-key token buckets with LRU
/// eviction, plus the site-global NXDOMAIN budget bucket.
///
/// One limiter is shared (behind a mutex) by every engine fork of a
/// serving plane: the per-site NXDOMAIN budget is semantically
/// site-wide, and sharing keeps the verdict sequence independent of
/// how the kernel's reuseport hash spreads clients over shards.
#[derive(Debug)]
pub struct RateLimiter {
    policy: RateLimitPolicy,
    buckets: HashMap<u64, Bucket>,
    nx: Bucket,
    use_seq: u64,
}

/// A limiter shared across the forks of one serving plane.
pub type SharedRateLimiter = Arc<Mutex<RateLimiter>>;

impl RateLimiter {
    /// A fresh limiter under `policy` (all buckets start full).
    pub fn new(policy: RateLimitPolicy) -> RateLimiter {
        RateLimiter {
            policy,
            buckets: HashMap::new(),
            nx: Bucket::full(policy.nxdomain_budget),
            use_seq: 0,
        }
    }

    /// A fresh limiter behind the shared handle engine forks clone.
    pub fn shared(policy: RateLimitPolicy) -> SharedRateLimiter {
        Arc::new(Mutex::new(RateLimiter::new(policy)))
    }

    /// The policy this limiter enforces.
    pub fn policy(&self) -> &RateLimitPolicy {
        &self.policy
    }

    /// Currently tracked client buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Charges one chargeable response for client `key` (`nxdomain`
    /// additionally charges the site-wide NXDOMAIN budget) and returns
    /// the verdict. Purely request-tick driven — see the module docs
    /// for the determinism contract.
    pub fn verdict(&mut self, key: u64, nxdomain: bool) -> RrlDecision {
        self.use_seq += 1;
        let p = self.policy;
        let period = u64::from(p.period.max(1));
        let mut evicted = false;
        if !self.buckets.contains_key(&key) && self.buckets.len() >= p.max_buckets.max(1) {
            // O(n) LRU scan: eviction only happens past max_buckets
            // distinct prefixes, far off the per-packet hot path.
            if let Some(oldest) =
                self.buckets.iter().min_by_key(|(k, b)| (b.last_use, **k)).map(|(k, _)| *k)
            {
                self.buckets.remove(&oldest);
                evicted = true;
            }
        }
        let bucket = self.buckets.entry(key).or_insert_with(|| Bucket::full(p.burst));
        bucket.last_use = self.use_seq;
        bucket.refill(p.rate, period, p.burst);
        if !bucket.take() {
            return RrlDecision { verdict: bucket.limited(p.slip), evicted };
        }
        // Key bucket passed; NXDOMAINs additionally draw on the
        // site-wide budget (0 = unlimited).
        if nxdomain && p.nxdomain_budget > 0 {
            self.nx.refill(p.rate, period, p.nxdomain_budget);
            if !self.nx.take() {
                return RrlDecision { verdict: self.nx.limited(p.slip), evicted };
            }
        }
        RrlDecision { verdict: RrlVerdict::Answer, evicted }
    }

    #[cfg(test)]
    fn assert_invariants(&self) {
        let p = self.policy;
        let period = u64::from(p.period.max(1));
        for b in self.buckets.values() {
            assert!(b.tokens <= u64::from(p.burst), "tokens {} > burst {}", b.tokens, p.burst);
            assert!(b.frac < period, "frac {} >= period {period}", b.frac);
        }
        assert!(self.nx.tokens <= u64::from(p.nxdomain_budget));
        assert!(self.nx.frac < period);
        assert!(self.buckets.len() <= p.max_buckets.max(1));
    }
}

/// The `{verdict}` span histograms: time spent in the RRL decision,
/// one `dnswild_rrl_verdict_ns{verdict=...}` series per verdict.
///
/// Deliberately *not* a sixth [`dnswild_metrics::Stage`]: the stage
/// histograms carry a one-sample-per-packet invariant the metrics gate
/// checks, while verdict spans only exist for charged packets and only
/// when rate limiting is enabled.
#[derive(Debug, Clone)]
pub struct VerdictSpans {
    hists: [Arc<LogHistogram>; 3],
}

impl VerdictSpans {
    /// Registers the three verdict histograms (idempotent per registry).
    pub fn register(registry: &Registry) -> VerdictSpans {
        let hists = VERDICTS.map(|v| {
            registry.histogram_with(
                "dnswild_rrl_verdict_ns",
                "rate-limit decision time by verdict, nanoseconds",
                &[("verdict", v.name())],
            )
        });
        VerdictSpans { hists }
    }

    /// Records one decision duration under its verdict.
    #[inline]
    pub fn record(&self, verdict: RrlVerdict, ns: u64) {
        self.hists[verdict as usize].record(ns);
    }

    /// The histogram backing one verdict.
    pub fn histogram(&self, verdict: RrlVerdict) -> &LogHistogram {
        &self.hists[verdict as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::qc;
    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddrV4, SocketAddrV6};

    fn policy(burst: u32, rate: u32, period: u32, slip: u32) -> RateLimitPolicy {
        RateLimitPolicy { burst, rate, period, slip, ..RateLimitPolicy::default() }
    }

    #[test]
    fn burst_then_steady_state_ratio() {
        // burst 4, rate 1/period 4: the burst (plus the one token that
        // refills across its four ticks) drains, then exactly every
        // fourth charged query passes.
        let mut lim = RateLimiter::new(policy(4, 1, 4, 0));
        let verdicts: Vec<RrlVerdict> = (0..16).map(|_| lim.verdict(7, false).verdict).collect();
        use RrlVerdict::*;
        assert_eq!(
            verdicts,
            [
                Answer, Answer, Answer, Answer, Answer, // burst + 1 refilled
                Drop, Drop, Answer, // tick 8: frac reached 4 again
                Drop, Drop, Drop, Answer, Drop, Drop, Drop, Answer,
            ]
        );
    }

    #[test]
    fn slip_answers_one_in_n_limited() {
        let mut lim = RateLimiter::new(policy(0, 0, 1, 2));
        let verdicts: Vec<RrlVerdict> = (0..6).map(|_| lim.verdict(1, false).verdict).collect();
        use RrlVerdict::*;
        assert_eq!(verdicts, [Drop, Slip, Drop, Slip, Drop, Slip]);
        let mut always = RateLimiter::new(policy(0, 0, 1, 1));
        assert_eq!(always.verdict(1, false).verdict, Slip);
        let mut never = RateLimiter::new(policy(0, 0, 1, 0));
        assert_eq!(never.verdict(1, false).verdict, Drop);
    }

    #[test]
    fn nxdomain_budget_is_site_wide_across_keys() {
        // Generous per-key buckets; NXDOMAIN budget of 3 with no refill
        // pressure to speak of (rate 0 keeps the budget from refilling).
        let p = RateLimitPolicy { nxdomain_budget: 3, ..policy(100, 0, 1, 0) };
        let mut lim = RateLimiter::new(p);
        let mut answers = 0;
        for key in 0..10u64 {
            if lim.verdict(key, true).verdict == RrlVerdict::Answer {
                answers += 1;
            }
        }
        assert_eq!(answers, 3, "budget caps NXDOMAINs across all keys");
        // Non-NXDOMAIN traffic is untouched by the budget.
        assert_eq!(lim.verdict(99, false).verdict, RrlVerdict::Answer);
    }

    #[test]
    fn lru_eviction_is_deterministic_and_reported() {
        let p = RateLimitPolicy { max_buckets: 2, ..policy(1, 0, 1, 0) };
        let mut lim = RateLimiter::new(p);
        assert!(!lim.verdict(10, false).evicted);
        assert!(!lim.verdict(20, false).evicted);
        // Key 30 must evict key 10 (the least recently used).
        assert!(lim.verdict(30, false).evicted);
        assert_eq!(lim.bucket_count(), 2);
        // Key 10 returns with a *fresh* bucket (burst available again),
        // evicting key 20.
        let d = lim.verdict(10, false);
        assert!(d.evicted);
        assert_eq!(d.verdict, RrlVerdict::Answer);
        // Key 30 was just used, so it kept its bucket — now empty.
        assert_eq!(lim.verdict(30, false).verdict, RrlVerdict::Drop);
    }

    #[test]
    fn client_keys_aggregate_on_prefixes() {
        let p = RateLimitPolicy::default();
        let v4 = |a, b, c, d, port| {
            SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::new(a, b, c, d), port))
        };
        // Same /24 → same key, regardless of host byte or port.
        assert_eq!(p.client_key(&v4(192, 0, 2, 1, 1000)), p.client_key(&v4(192, 0, 2, 99, 2000)));
        assert_ne!(p.client_key(&v4(192, 0, 2, 1, 1000)), p.client_key(&v4(192, 0, 3, 1, 1000)));
        // key_ports separates loopback clients by source port.
        let pp = RateLimitPolicy { key_ports: true, ..p };
        assert_ne!(pp.client_key(&v4(127, 0, 0, 1, 1000)), pp.client_key(&v4(127, 0, 0, 1, 1001)));
        assert_eq!(pp.client_key(&v4(127, 0, 0, 1, 1000)), pp.client_key(&v4(127, 0, 0, 1, 1000)));
        // v6: same /56 collapses, different /56 does not.
        let v6 = |segs: [u16; 8]| {
            SocketAddr::V6(SocketAddrV6::new(Ipv6Addr::from(segs), 53, 0, 0))
        };
        assert_eq!(
            p.client_key(&v6([0x2001, 0xdb8, 0, 0x0100, 0, 0, 0, 1])),
            p.client_key(&v6([0x2001, 0xdb8, 0, 0x01ff, 9, 9, 9, 9]))
        );
        assert_ne!(
            p.client_key(&v6([0x2001, 0xdb8, 0, 0x0100, 0, 0, 0, 1])),
            p.client_key(&v6([0x2001, 0xdb8, 0, 0x0200, 0, 0, 0, 1]))
        );
    }

    /// Draws a small-but-adversarial policy: tiny bursts, rates and
    /// periods around the carry boundaries, occasional extreme values.
    fn gen_policy(g: &mut qc::Gen) -> RateLimitPolicy {
        RateLimitPolicy {
            burst: g.u32_in(0..6),
            rate: g.u32_in(0..5),
            period: g.u32_in(0..6), // 0 exercises the max(1) clamp
            slip: g.u32_in(0..4),
            nxdomain_budget: g.u32_in(0..5),
            max_buckets: g.usize_in(1..5),
            ..RateLimitPolicy::default()
        }
    }

    #[test]
    fn qc_refill_arithmetic_never_overflows_or_escapes_caps() {
        qc::property("server/rrl-refill-invariants").cases(2048).check(|g| {
            let p = gen_policy(g);
            let mut lim = RateLimiter::new(p);
            let steps = g.usize_in(1..200);
            for _ in 0..steps {
                let key = g.u64_in(0..8);
                let nx = g.bool();
                lim.verdict(key, nx);
                lim.assert_invariants();
            }
        });
    }

    #[test]
    fn qc_verdict_counts_sum_to_offered_load() {
        qc::property("server/rrl-books-balance").cases(2048).check(|g| {
            let p = gen_policy(g);
            let mut lim = RateLimiter::new(p);
            let offered = g.usize_in(1..300);
            let (mut answer, mut slip, mut drop) = (0u64, 0u64, 0u64);
            for _ in 0..offered {
                match lim.verdict(g.u64_in(0..6), g.bool()).verdict {
                    RrlVerdict::Answer => answer += 1,
                    RrlVerdict::Slip => slip += 1,
                    RrlVerdict::Drop => drop += 1,
                }
            }
            assert_eq!(answer + slip + drop, offered as u64);
        });
    }

    #[test]
    fn qc_same_charge_sequence_same_verdict_sequence() {
        qc::property("server/rrl-verdict-deterministic").cases(2048).check(|g| {
            let p = gen_policy(g);
            let seq: Vec<(u64, bool)> =
                g.vec(1..200, |g| (g.u64_in(0..8), g.bool()));
            let run = |seq: &[(u64, bool)]| -> Vec<RrlDecision> {
                let mut lim = RateLimiter::new(p);
                seq.iter().map(|&(k, nx)| lim.verdict(k, nx)).collect()
            };
            assert_eq!(run(&seq), run(&seq), "replay must be byte-identical");
        });
    }

    #[test]
    fn verdict_spans_record_under_their_label() {
        let reg = Registry::new();
        let spans = VerdictSpans::register(&reg);
        spans.record(RrlVerdict::Slip, 100);
        spans.record(RrlVerdict::Drop, 50);
        assert_eq!(spans.histogram(RrlVerdict::Slip).count(), 1);
        assert_eq!(spans.histogram(RrlVerdict::Drop).count(), 1);
        assert_eq!(spans.histogram(RrlVerdict::Answer).count(), 0);
        let text = reg.render();
        assert!(text.contains("dnswild_rrl_verdict_ns_bucket{verdict=\"slip\""));
    }
}
