//! # dnswild-server
//!
//! The authoritative DNS server actor: the reproduction's stand-in for
//! the paper's NSD 4.1.7 instances on AWS EC2.
//!
//! A server hosts one or more [`Zone`]s and answers queries arriving as
//! simulator datagrams. Two behaviours matter for the reproduced
//! methodology:
//!
//! * **Per-site TXT identity** — zones carry the placeholder
//!   [`SITE_PLACEHOLDER`] in probe TXT records; each server substitutes
//!   its own site code, so clients learn in-band which authoritative
//!   (or anycast site) answered. This mirrors the paper configuring "a
//!   different response for the same DNS TXT resource" per NS (§3.1).
//! * **CHAOS identification** — `hostname.bind`/`id.server` TXT CH
//!   queries return the site code. The paper deliberately avoids CHAOS
//!   for measurement (a recursive answers it itself rather than
//!   forwarding); we implement it so that experiments can *demonstrate*
//!   that failure mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod rrl;

use std::any::Any;
use std::sync::Arc;

use std::sync::Mutex;

use dnswild_netsim::{Actor, Context, Datagram, SimAddr, SimTime, Transport};
use dnswild_proto::{Name, RType};
use dnswild_zone::Zone;

pub use engine::{
    AnswerEngine, HandledPacket, Introspection, PacketClass, QueryView, ServerStats,
    TransportKind, TruncationPolicy,
};
pub use rrl::{
    RateLimitPolicy, RateLimiter, RrlDecision, RrlScope, RrlVerdict, SharedRateLimiter,
    VerdictSpans, VERDICTS,
};

/// One query observed at the authoritative — the passive-trace view the
/// paper uses to cross-check client-side data (§3.1) and to analyze
/// production Root/.nl traffic (§5).
#[derive(Debug, Clone)]
pub struct ServerLogEntry {
    /// Arrival time.
    pub time: SimTime,
    /// The recursive that sent the query.
    pub client: SimAddr,
    /// The address the query arrived on (distinguishes services when one
    /// host serves several).
    pub service: SimAddr,
    /// Query name.
    pub qname: Name,
    /// Query type.
    pub qtype: RType,
}

/// Shared handle to a server-side query log.
pub type ServerLog = Arc<Mutex<Vec<ServerLogEntry>>>;

/// An authoritative name server bound to a simulator host.
///
/// This is a thin transport adapter: the answering semantics live in the
/// transport-agnostic [`AnswerEngine`], which the real-socket serving
/// plane (`dnswild-netio`) drives as well. The actor adds only what is
/// simulation-specific — outage windows, the passive query log, and the
/// simulated-datagram plumbing.
pub struct AuthoritativeServer {
    engine: AnswerEngine,
    log: Option<ServerLog>,
    /// Windows during which the server process is down and silently
    /// drops everything (a crash or a saturating DDoS).
    outages: Vec<(SimTime, SimTime)>,
    /// Reusable response encode buffer (the engine's zero-alloc path).
    resp_buf: Vec<u8>,
}

impl AuthoritativeServer {
    /// Creates a server identified as `site_code` (e.g. `"FRA"`),
    /// serving `zones`.
    pub fn new(site_code: impl Into<String>, zones: Vec<Zone>) -> Self {
        AuthoritativeServer {
            engine: AnswerEngine::new(site_code, zones),
            log: None,
            outages: Vec::new(),
            resp_buf: Vec::new(),
        }
    }

    /// Schedules an outage: during `[from, until)` the server drops all
    /// traffic, modelling a crashed or DDoS-saturated instance. The
    /// reproduced paper's §7 notes anycast matters for DDoS mitigation;
    /// pairing this with `Simulator::schedule_withdrawal` lets
    /// experiments contrast a dead unicast NS (blackhole until clients
    /// fail over) with a dead anycast site (BGP reroutes around it).
    pub fn with_outage(mut self, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "outage must have positive duration");
        self.outages.push((from, until));
        self
    }

    fn is_down(&self, now: SimTime) -> bool {
        self.outages.iter().any(|&(from, until)| from <= now && now < until)
    }

    /// Attaches a shared query log; every received query is appended.
    pub fn with_log(mut self, log: ServerLog) -> Self {
        self.log = Some(log);
        self
    }

    /// The site identity this server answers with.
    pub fn site_code(&self) -> &str {
        self.engine.site_code()
    }

    /// Traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.engine.stats()
    }

    /// The underlying transport-agnostic answer engine.
    pub fn engine(&self) -> &AnswerEngine {
        &self.engine
    }

}

impl Actor for AuthoritativeServer {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, dgram: Datagram) {
        if self.is_down(ctx.now()) {
            self.engine.record_drop();
            return;
        }
        let transport = match dgram.transport {
            Transport::Udp => TransportKind::Udp,
            Transport::Tcp => TransportKind::Tcp,
        };
        let mut buf = std::mem::take(&mut self.resp_buf);
        let handled = self.engine.handle_packet(&dgram.payload, transport, &mut buf);
        if let (Some(log), Some(view)) = (&self.log, &handled.query) {
            log.lock().expect("server log mutex poisoned").push(ServerLogEntry {
                time: ctx.now(),
                client: dgram.src,
                service: dgram.dst,
                qname: view.qname.clone(),
                qtype: view.qtype,
            });
        }
        if handled.response {
            // Reply from the address we were queried on — crucial for
            // anycast, where that address is shared across sites — and
            // over the transport the query used.
            match dgram.transport {
                Transport::Udp => ctx.send(dgram.dst, dgram.src, buf.clone()),
                Transport::Tcp => ctx.send_tcp(dgram.dst, dgram.src, buf.clone()),
            }
        }
        self.resp_buf = buf;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswild_netsim::geo::datacenters;
    use dnswild_netsim::{HostConfig, LatencyConfig, SimDuration, Simulator};
    use dnswild_proto::rdata::Txt;
    use dnswild_proto::{Class, Message, Opcode, Question, RData, Rcode};
    use dnswild_zone::presets::test_domain_zone;

    /// A stub client that sends canned queries and stores responses.
    struct Client {
        target: SimAddr,
        to_send: Vec<Vec<u8>>,
        responses: Vec<Message>,
    }

    impl Actor for Client {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let own = ctx.own_addr();
            for payload in self.to_send.drain(..) {
                ctx.send(own, self.target, payload);
            }
        }
        fn on_datagram(&mut self, _ctx: &mut Context<'_>, dgram: Datagram) {
            self.responses.push(Message::decode(&dgram.payload).expect("decodable response"));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn lossless() -> Simulator {
        Simulator::with_latency(
            11,
            LatencyConfig { loss_rate: 0.0, jitter_mean_ms: 0.0, ..LatencyConfig::default() },
        )
    }

    fn origin() -> Name {
        Name::parse("ourtestdomain.nl").unwrap()
    }

    fn run_queries(queries: Vec<Message>) -> (Vec<Message>, ServerStats) {
        let mut sim = lossless();
        let zone = test_domain_zone(&origin(), 2);
        let server = AuthoritativeServer::new("FRA", vec![zone]);
        let sh = sim.add_host(
            HostConfig::at_place(&datacenters::FRA, SimDuration::from_millis(1), 1),
            Box::new(server),
        );
        let saddr = sim.bind_unicast(sh);
        let payloads = queries.iter().map(|q| q.encode().unwrap()).collect();
        let ch = sim.add_host(
            HostConfig::at_place(&datacenters::DUB, SimDuration::from_millis(2), 2),
            Box::new(Client { target: saddr, to_send: payloads, responses: vec![] }),
        );
        sim.bind_unicast(ch);
        sim.run_until_idle();
        let responses = sim.actor::<Client>(ch).unwrap().responses.clone();
        let stats = sim.actor::<AuthoritativeServer>(sh).unwrap().stats();
        (responses, stats)
    }

    #[test]
    fn probe_txt_answered_with_site_identity() {
        let q = Message::iterative_query(
            1,
            Name::parse("p1-r1.ourtestdomain.nl").unwrap(),
            RType::Txt,
        );
        let (resps, stats) = run_queries(vec![q]);
        assert_eq!(resps.len(), 1);
        let r = &resps[0];
        assert!(r.header.authoritative);
        assert_eq!(r.rcode(), Rcode::NoError);
        let RData::Txt(t) = &r.answers[0].rdata else { panic!("not TXT") };
        assert_eq!(t.first_as_string(), "site=FRA");
        assert_eq!(stats.answers, 1);
    }

    #[test]
    fn off_zone_refused() {
        let q = Message::iterative_query(2, Name::parse("example.com").unwrap(), RType::A);
        let (resps, stats) = run_queries(vec![q]);
        assert_eq!(resps[0].rcode(), Rcode::Refused);
        assert_eq!(stats.refused, 1);
    }

    #[test]
    fn apex_ns_answered() {
        let q = Message::iterative_query(3, origin(), RType::Ns);
        let (resps, _) = run_queries(vec![q]);
        assert_eq!(resps[0].answers.len(), 2);
    }

    #[test]
    fn nodata_at_apex_for_txt() {
        // The wildcard does not cover the apex itself.
        let q = Message::iterative_query(4, origin(), RType::Txt);
        let (resps, stats) = run_queries(vec![q]);
        assert_eq!(resps[0].rcode(), Rcode::NoError);
        assert!(resps[0].answers.is_empty());
        assert_eq!(resps[0].authorities.len(), 1);
        assert_eq!(stats.nodata, 1);
    }

    #[test]
    fn chaos_hostname_bind_identifies_site() {
        let mut q =
            Message::iterative_query(5, Name::parse("hostname.bind").unwrap(), RType::Txt);
        q.questions[0].qclass = Class::Ch;
        let (resps, stats) = run_queries(vec![q]);
        let RData::Txt(t) = &resps[0].answers[0].rdata else { panic!("not TXT") };
        assert_eq!(t.first_as_string(), "FRA");
        assert_eq!(stats.chaos, 1);
    }

    #[test]
    fn chaos_other_name_refused() {
        let q = Message {
            header: dnswild_proto::Header { id: 6, ..Default::default() },
            questions: vec![Question::chaos(Name::parse("version.bind").unwrap(), RType::Txt)],
            answers: vec![],
            authorities: vec![],
            additionals: vec![],
        };
        let (resps, _) = run_queries(vec![q]);
        assert_eq!(resps[0].rcode(), Rcode::Refused);
    }

    #[test]
    fn notimp_for_update() {
        let mut q = Message::iterative_query(7, origin(), RType::A);
        q.header.opcode = Opcode::Update;
        let (resps, stats) = run_queries(vec![q]);
        assert_eq!(resps[0].rcode(), Rcode::NotImp);
        assert_eq!(stats.notimp, 1);
    }

    #[test]
    fn edns_echoed() {
        let q = Message::iterative_query(8, origin(), RType::Ns);
        assert!(q.edns().is_some());
        let (resps, _) = run_queries(vec![q]);
        assert!(resps[0].edns().is_some());
    }

    #[test]
    fn garbage_gets_formerr_when_header_readable() {
        let mut sim = lossless();
        let zone = test_domain_zone(&origin(), 2);
        let sh = sim.add_host(
            HostConfig::at_place(&datacenters::FRA, SimDuration::from_millis(1), 1),
            Box::new(AuthoritativeServer::new("FRA", vec![zone])),
        );
        let saddr = sim.bind_unicast(sh);
        let mut garbage = vec![0u8; 12];
        garbage[0] = 0xab;
        garbage[1] = 0xcd;
        garbage.push(0xff); // trailing garbage → decode error
        let ch = sim.add_host(
            HostConfig::at_place(&datacenters::DUB, SimDuration::from_millis(2), 2),
            Box::new(Client { target: saddr, to_send: vec![garbage], responses: vec![] }),
        );
        sim.bind_unicast(ch);
        sim.run_until_idle();
        let resps = &sim.actor::<Client>(ch).unwrap().responses;
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].rcode(), Rcode::FormErr);
        assert_eq!(resps[0].header.id, 0xabcd);
    }

    #[test]
    fn server_log_records_queries() {
        let mut sim = lossless();
        let log: ServerLog = Arc::new(Mutex::new(Vec::new()));
        let zone = test_domain_zone(&origin(), 2);
        let server = AuthoritativeServer::new("FRA", vec![zone]).with_log(log.clone());
        let sh = sim.add_host(
            HostConfig::at_place(&datacenters::FRA, SimDuration::from_millis(1), 1),
            Box::new(server),
        );
        let saddr = sim.bind_unicast(sh);
        let q =
            Message::iterative_query(9, Name::parse("x.ourtestdomain.nl").unwrap(), RType::Txt);
        let ch = sim.add_host(
            HostConfig::at_place(&datacenters::DUB, SimDuration::from_millis(2), 2),
            Box::new(Client { target: saddr, to_send: vec![q.encode().unwrap()], responses: vec![] }),
        );
        sim.bind_unicast(ch);
        sim.run_until_idle();
        let entries = log.lock().expect("server log mutex poisoned");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].qtype, RType::Txt);
    }

    #[test]
    fn branding_leaves_ordinary_txt_untouched() {
        use dnswild_zone::Zone;
        let origin = Name::parse("ourtestdomain.nl").unwrap();
        let mut zone = test_domain_zone(&origin, 1);
        // An ordinary TXT record that must NOT be rewritten.
        zone.insert(dnswild_proto::Record::new(
            origin.prepend("spf").unwrap(),
            300,
            RData::Txt(Txt::from_string("v=spf1 -all").unwrap()),
        ));
        let _ = Zone::new(origin.clone()); // type in scope for clarity
        let q = Message::iterative_query(
            21,
            Name::parse("spf.ourtestdomain.nl").unwrap(),
            RType::Txt,
        );
        let mut sim = lossless();
        let sh = sim.add_host(
            HostConfig::at_place(&datacenters::FRA, SimDuration::from_millis(1), 1),
            Box::new(AuthoritativeServer::new("FRA", vec![zone])),
        );
        let saddr = sim.bind_unicast(sh);
        let ch = sim.add_host(
            HostConfig::at_place(&datacenters::DUB, SimDuration::from_millis(2), 2),
            Box::new(Client { target: saddr, to_send: vec![q.encode().unwrap()], responses: vec![] }),
        );
        sim.bind_unicast(ch);
        sim.run_until_idle();
        let resp = &sim.actor::<Client>(ch).unwrap().responses[0];
        let RData::Txt(txt) = &resp.answers[0].rdata else { panic!("not TXT") };
        assert_eq!(txt.first_as_string(), "v=spf1 -all");
    }

    #[test]
    fn anycast_service_address_echoed_and_logged() {
        use std::sync::Arc;
        let mut sim = lossless();
        let log: ServerLog = Arc::new(Mutex::new(Vec::new()));
        let origin = origin();
        let mut hosts = Vec::new();
        for site in [&datacenters::FRA, &datacenters::SYD] {
            let zone = test_domain_zone(&origin, 1);
            let server = AuthoritativeServer::new(site.code, vec![zone]).with_log(log.clone());
            hosts.push(sim.add_host(
                HostConfig::at_place(site, SimDuration::from_millis(1), 1),
                Box::new(server),
            ));
        }
        let svc = sim.bind_anycast(&hosts);
        let q = Message::iterative_query(
            22,
            Name::parse("x.ourtestdomain.nl").unwrap(),
            RType::Txt,
        );
        let ch = sim.add_host(
            HostConfig::at_place(&datacenters::DUB, SimDuration::from_millis(2), 2),
            Box::new(Client { target: svc, to_send: vec![q.encode().unwrap()], responses: vec![] }),
        );
        sim.bind_unicast(ch);
        sim.run_until_idle();
        // The client heard back (reply sent FROM the anycast address).
        let client = sim.actor::<Client>(ch).unwrap();
        assert_eq!(client.responses.len(), 1);
        // And the server log recorded the anycast service address.
        let entries = log.lock().expect("server log mutex poisoned");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].service, svc);
    }

    #[test]
    fn multiple_zones_served_side_by_side() {
        let z1 = test_domain_zone(&Name::parse("alpha.test").unwrap(), 1);
        let z2 = test_domain_zone(&Name::parse("beta.test").unwrap(), 1);
        let q1 = Message::iterative_query(23, Name::parse("a.alpha.test").unwrap(), RType::Txt);
        let q2 = Message::iterative_query(24, Name::parse("b.beta.test").unwrap(), RType::Txt);
        let mut sim = lossless();
        let sh = sim.add_host(
            HostConfig::at_place(&datacenters::FRA, SimDuration::from_millis(1), 1),
            Box::new(AuthoritativeServer::new("FRA", vec![z1, z2])),
        );
        let saddr = sim.bind_unicast(sh);
        let ch = sim.add_host(
            HostConfig::at_place(&datacenters::DUB, SimDuration::from_millis(2), 2),
            Box::new(Client {
                target: saddr,
                to_send: vec![q1.encode().unwrap(), q2.encode().unwrap()],
                responses: vec![],
            }),
        );
        sim.bind_unicast(ch);
        sim.run_until_idle();
        let client = sim.actor::<Client>(ch).unwrap();
        assert_eq!(client.responses.len(), 2);
        assert!(client.responses.iter().all(|r| r.rcode() == Rcode::NoError));
    }

    #[test]
    fn truncation_uses_512_without_edns() {
        use dnswild_proto::Record;
        let origin = origin();
        let mut zone = test_domain_zone(&origin, 1);
        // ~700 bytes of TXT: over 512 but under the EDNS 1232.
        let strings: Vec<Vec<u8>> = (0..3).map(|i| vec![b'x' + i as u8; 230]).collect();
        zone.insert(Record::new(
            origin.prepend("mid").unwrap(),
            60,
            RData::Txt(Txt::new(strings).unwrap()),
        ));
        let make_query = |id: u16, edns: bool| {
            let mut q = Message::iterative_query(
                id,
                Name::parse("mid.ourtestdomain.nl").unwrap(),
                RType::Txt,
            );
            if !edns {
                q.additionals.clear();
            }
            q
        };
        let mut sim = lossless();
        let sh = sim.add_host(
            HostConfig::at_place(&datacenters::FRA, SimDuration::from_millis(1), 1),
            Box::new(AuthoritativeServer::new("FRA", vec![zone])),
        );
        let saddr = sim.bind_unicast(sh);
        let ch = sim.add_host(
            HostConfig::at_place(&datacenters::DUB, SimDuration::from_millis(2), 2),
            Box::new(Client {
                target: saddr,
                to_send: vec![
                    make_query(31, false).encode().unwrap(),
                    make_query(32, true).encode().unwrap(),
                ],
                responses: vec![],
            }),
        );
        sim.bind_unicast(ch);
        sim.run_until_idle();
        let client = sim.actor::<Client>(ch).unwrap();
        let by_id = |id: u16| client.responses.iter().find(|r| r.header.id == id).unwrap();
        assert!(by_id(31).header.truncated, "no EDNS → 512 limit → truncated");
        assert!(by_id(31).answers.is_empty());
        assert!(!by_id(32).header.truncated, "EDNS 1232 fits the ~700B answer");
        assert_eq!(by_id(32).answers.len(), 1);
    }

    #[test]
    fn outage_window_drops_queries_then_recovers() {
        use dnswild_netsim::SimDuration;
        // A client that sends one query per minute for 5 minutes; the
        // server is down during minutes 1–3.
        struct PeriodicClient {
            target: SimAddr,
            sent: u32,
            responses: Vec<Message>,
        }
        impl Actor for PeriodicClient {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::ZERO, 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: u64) {
                if self.sent >= 5 {
                    return;
                }
                let q = Message::iterative_query(
                    self.sent as u16 + 1,
                    Name::parse(&format!("q{}.ourtestdomain.nl", self.sent)).unwrap(),
                    RType::Txt,
                );
                self.sent += 1;
                let own = ctx.own_addr();
                ctx.send(own, self.target, q.encode().unwrap());
                ctx.set_timer(SimDuration::from_mins(1), 0);
            }
            fn on_datagram(&mut self, _ctx: &mut Context<'_>, d: Datagram) {
                self.responses.push(Message::decode(&d.payload).unwrap());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim = lossless();
        let zone = test_domain_zone(&origin(), 1);
        let down_from = SimTime::ZERO + SimDuration::from_secs(50);
        let down_until = SimTime::ZERO + SimDuration::from_secs(170);
        let server =
            AuthoritativeServer::new("FRA", vec![zone]).with_outage(down_from, down_until);
        let sh = sim.add_host(
            HostConfig::at_place(&datacenters::FRA, SimDuration::from_millis(1), 1),
            Box::new(server),
        );
        let saddr = sim.bind_unicast(sh);
        let ch = sim.add_host(
            HostConfig::at_place(&datacenters::DUB, SimDuration::from_millis(2), 2),
            Box::new(PeriodicClient { target: saddr, sent: 0, responses: vec![] }),
        );
        sim.bind_unicast(ch);
        sim.run_until_idle();

        let client = sim.actor::<PeriodicClient>(ch).unwrap();
        // Queries at t=0, 60, 120, 180, 240: the 60s and 120s ones fall
        // into the outage window.
        assert_eq!(client.responses.len(), 3, "two queries swallowed by the outage");
        let server = sim.actor::<AuthoritativeServer>(sh).unwrap();
        assert_eq!(server.stats().dropped, 2);
        assert_eq!(server.stats().answers, 3);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn outage_with_inverted_window_rejected() {
        let zone = test_domain_zone(&origin(), 1);
        let _ = AuthoritativeServer::new("FRA", vec![zone])
            .with_outage(SimTime::from_micros(10), SimTime::from_micros(5));
    }

    #[test]
    fn longest_origin_zone_wins() {
        let parent = test_domain_zone(&Name::parse("nl").unwrap(), 1);
        let child = test_domain_zone(&origin(), 2);
        let server = AuthoritativeServer::new("X", vec![parent, child]);
        let zone = server.engine().zone_for(&Name::parse("a.ourtestdomain.nl").unwrap()).unwrap();
        assert_eq!(zone.origin(), &origin());
        let zone = server.engine().zone_for(&Name::parse("other.nl").unwrap()).unwrap();
        assert_eq!(zone.origin(), &Name::parse("nl").unwrap());
    }
}
