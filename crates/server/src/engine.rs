//! The transport-agnostic authoritative answer engine.
//!
//! [`AnswerEngine`] is the part of the server that turns one inbound
//! packet into (at most) one response: decode, opcode/class screening,
//! zone lookup, per-site TXT branding, CHAOS identification, EDNS echo
//! and UDP truncation. It knows nothing about *how* packets arrive —
//! the deterministic simulator actor ([`crate::AuthoritativeServer`])
//! and the real-socket serving plane (`dnswild-netio`) both drive the
//! same engine, so behaviour verified in simulation is the behaviour
//! that runs on the wire.
//!
//! The engine writes responses into a caller-supplied reusable buffer
//! via [`dnswild_proto::Message::encode_into`], so a serving hot loop
//! performs zero per-response allocations once its buffers are warm.

use std::iter::Sum;
use std::ops::{Add, AddAssign};
use std::sync::Arc;
use std::time::Instant;

use dnswild_proto::rdata::Txt;
use dnswild_proto::{
    Class, Edns, Message, Name, Opcode, RData, RType, Rcode, Record, EXTENDED_RCODE_BADVERS,
    MIN_EDNS_PAYLOAD,
};
use dnswild_metrics::{Stage, StageClock, StageSpans};
use dnswild_telemetry::SnapshotCell;
use dnswild_zone::presets::SITE_PLACEHOLDER;
use dnswild_zone::{Lookup, Zone};

use crate::rrl::{
    RateLimitPolicy, RateLimiter, RrlScope, RrlVerdict, SharedRateLimiter, VerdictSpans,
};

/// Counters a server keeps about its own traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries received (decodable messages with QR=0).
    pub queries: u64,
    /// Positive answers served.
    pub answers: u64,
    /// NXDOMAIN responses.
    pub nxdomain: u64,
    /// NODATA responses.
    pub nodata: u64,
    /// Referrals served.
    pub referrals: u64,
    /// REFUSED responses (off-zone queries).
    pub refused: u64,
    /// FORMERR responses (undecodable but with a readable header).
    pub formerr: u64,
    /// NOTIMP responses (non-QUERY opcodes).
    pub notimp: u64,
    /// CHAOS identification queries answered.
    pub chaos: u64,
    /// BADVERS responses (RFC 6891: the query asked for an EDNS version
    /// newer than 0, answered with extended RCODE 16).
    pub badvers: u64,
    /// UDP responses truncated because they exceeded the negotiated
    /// payload limit (TC=1 sent instead).
    pub truncated: u64,
    /// Queries served over the TCP-like transport.
    pub tcp_queries: u64,
    /// Datagrams dropped silently (unparseable, or responses).
    pub dropped: u64,
    /// Responses suppressed by response-rate limiting. The query still
    /// counts in `queries` and its outcome counter — RRL happens after
    /// classification, ahead of encode — so `question_outcomes` and
    /// `packets_seen` balance unchanged.
    pub rrl_dropped: u64,
    /// Rate-limited responses answered as minimal TC=1 replies (the
    /// 1-in-`slip` leak inviting a TCP retry). Not counted in
    /// `truncated`, which tracks size-driven truncation.
    pub rrl_slipped: u64,
    /// Client token buckets evicted (LRU) to admit new keys.
    pub bucket_evictions: u64,
}

impl ServerStats {
    /// Sum of the per-outcome response counters for proper questions
    /// (everything [`AnswerEngine::handle_query`] classifies a question
    /// into). For a run where every sent packet is a well-formed query
    /// this equals [`ServerStats::queries`] — the consistency invariant
    /// the loopback smoke test asserts.
    pub fn question_outcomes(&self) -> u64 {
        self.answers
            + self.nxdomain
            + self.nodata
            + self.referrals
            + self.refused
            + self.chaos
            + self.badvers
    }

    /// Total packets the engine classified: every inbound packet bumps
    /// exactly one of `queries`, `notimp`, `formerr` or `dropped`, so
    /// this equals the number of [`AnswerEngine::handle_packet`] calls.
    /// The chaos smoke gate balances it against the fault layer's
    /// delivered-datagram count. (Unlike
    /// [`ServerStats::question_outcomes`] this also covers packets that
    /// never reached the question stage — corrupted queries, responses,
    /// non-QUERY opcodes.)
    pub fn packets_seen(&self) -> u64 {
        self.queries + self.notimp + self.formerr + self.dropped
    }

    /// Folds any collection of per-thread / per-actor stats into one
    /// aggregate. The single merge code path used by both the
    /// multi-threaded serving plane and multi-server simulations.
    pub fn aggregate<I: IntoIterator<Item = ServerStats>>(parts: I) -> ServerStats {
        parts.into_iter().sum()
    }
}

impl Add for ServerStats {
    type Output = ServerStats;
    fn add(self, rhs: ServerStats) -> ServerStats {
        ServerStats {
            queries: self.queries + rhs.queries,
            answers: self.answers + rhs.answers,
            nxdomain: self.nxdomain + rhs.nxdomain,
            nodata: self.nodata + rhs.nodata,
            referrals: self.referrals + rhs.referrals,
            refused: self.refused + rhs.refused,
            formerr: self.formerr + rhs.formerr,
            notimp: self.notimp + rhs.notimp,
            chaos: self.chaos + rhs.chaos,
            badvers: self.badvers + rhs.badvers,
            truncated: self.truncated + rhs.truncated,
            tcp_queries: self.tcp_queries + rhs.tcp_queries,
            dropped: self.dropped + rhs.dropped,
            rrl_dropped: self.rrl_dropped + rhs.rrl_dropped,
            rrl_slipped: self.rrl_slipped + rhs.rrl_slipped,
            bucket_evictions: self.bucket_evictions + rhs.bucket_evictions,
        }
    }
}

impl AddAssign for ServerStats {
    fn add_assign(&mut self, rhs: ServerStats) {
        *self = *self + rhs;
    }
}

impl Sum for ServerStats {
    fn sum<I: Iterator<Item = ServerStats>>(iter: I) -> ServerStats {
        iter.fold(ServerStats::default(), Add::add)
    }
}

/// How a site negotiates EDNS(0) payload sizes — the per-site
/// truncation policy the paper's multi-site deployments tune
/// independently (an anycast site behind a lossy path may cap UDP
/// answers well below what clients advertise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncationPolicy {
    /// Payload size this site advertises in the OPT record of its own
    /// responses.
    pub advertise: u16,
    /// Ceiling applied to the client's advertised size: a UDP response
    /// may never exceed `min(client_advertised, max_udp)` bytes (both
    /// clamped up to the 512-byte RFC floor) before TC=1 replaces it.
    pub max_udp: u16,
}

impl Default for TruncationPolicy {
    fn default() -> Self {
        TruncationPolicy {
            advertise: dnswild_proto::DEFAULT_EDNS_PAYLOAD,
            max_udp: dnswild_proto::DEFAULT_EDNS_PAYLOAD,
        }
    }
}

impl TruncationPolicy {
    /// A policy advertising and capping at the same `size` — what
    /// `dnswild serve --edns-size` configures.
    pub fn symmetric(size: u16) -> Self {
        TruncationPolicy { advertise: size, max_udp: size }
    }

    /// The UDP byte limit negotiated with a query: 512 without EDNS,
    /// otherwise the client's clamped advertisement capped by this
    /// site's ceiling (never below the RFC floor).
    pub fn udp_limit(&self, edns: Option<&Edns>) -> usize {
        match edns {
            Some(e) => e.payload_limit().min(self.max_udp).max(MIN_EDNS_PAYLOAD) as usize,
            None => MIN_EDNS_PAYLOAD as usize,
        }
    }
}

/// Which kind of transport a packet arrived over. The engine only cares
/// about the semantic difference (UDP answers are subject to the
/// client's advertised payload size; TCP answers are not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Datagram transport: truncate oversized answers with TC=1.
    Udp,
    /// Stream transport: no size limit below the 64 KiB message cap.
    Tcp,
}

/// The question a well-formed query carried — what a passive trace
/// records about it (qname/qtype; the caller adds time and addresses).
#[derive(Debug, Clone)]
pub struct QueryView {
    /// Query name.
    pub qname: Name,
    /// Query type.
    pub qtype: RType,
}

/// Which [`ServerStats`] counter a packet landed in — the telemetry
/// plane's event classification, mirroring [`ServerStats::packets_seen`]
/// so trace event counts close against the server's own books.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketClass {
    /// A well-formed QUERY (bumped `queries`).
    Query,
    /// A non-QUERY opcode (bumped `notimp`).
    NotImp,
    /// Undecodable with a readable header (bumped `formerr`).
    FormErr,
    /// Silently dropped (short garbage or a QR=1 packet).
    Dropped,
}

/// What [`AnswerEngine::handle_packet`] did with one inbound packet.
#[derive(Debug)]
pub struct HandledPacket {
    /// Whether a response was written into the caller's buffer.
    pub response: bool,
    /// The question, when the packet was a well-formed QUERY carrying
    /// one (the condition under which the simulator's passive log
    /// records an entry).
    pub query: Option<QueryView>,
    /// Whether the packet failed [`Message::decode`] (the FORMERR-salvage
    /// and short-garbage paths). The serving plane counts these at the
    /// socket layer so fault storms stay accountable.
    pub decode_error: bool,
    /// Which counter the packet bumped (one per packet, always).
    pub class: PacketClass,
    /// Rcode of the response written, when there was one.
    pub rcode: Option<Rcode>,
    /// Set when response-rate limiting intervened: `Some(Slip)` for a
    /// TC=1 leak, `Some(Drop)` for a suppressed response. `None` for
    /// everything the limiter let through (or never saw).
    pub rrl: Option<RrlVerdict>,
}

impl HandledPacket {
    fn drop() -> Self {
        HandledPacket {
            response: false,
            query: None,
            decode_error: false,
            class: PacketClass::Dropped,
            rcode: None,
            rrl: None,
        }
    }
}

/// The authoritative answer logic, independent of any transport.
///
/// Zones are held behind an [`Arc`] so the multi-threaded serving plane
/// can share one parsed zone set across workers; [`AnswerEngine::fork`]
/// hands each worker its own engine (own stats, shared zones).
#[derive(Debug, Clone)]
pub struct AnswerEngine {
    site_code: String,
    zones: Arc<Vec<Zone>>,
    stats: ServerStats,
    /// Live telemetry counters, when the serving plane runs with a
    /// collector attached. `None` everywhere else — in particular the
    /// simulation plane never sets it, which keeps the `exp_*` outputs
    /// byte-identical (a `stats.dnswild.` query is REFUSED there, as
    /// before).
    telemetry: Option<Arc<SnapshotCell>>,
    /// Process-level introspection for the `stats.dnswild.` answer
    /// (uptime epoch, whether a metrics endpoint is up). Set by the
    /// serving plane, never by the simulator — when `None` the answer
    /// keeps its original four-field shape.
    introspect: Option<Introspection>,
    /// How this site negotiates EDNS sizes and truncates UDP answers.
    policy: TruncationPolicy,
    /// Response-rate limiter, shared across every fork of this engine
    /// (the per-site NXDOMAIN budget is site-wide, and sharing keeps
    /// verdicts independent of reuseport flow hashing). `None` = no
    /// rate limiting; the simulation plane never sets it.
    rrl: Option<SharedRateLimiter>,
    /// `{verdict}` decision-time histograms, when metered.
    verdict_spans: Option<VerdictSpans>,
}

/// What the serving plane tells the engine about itself, echoed in the
/// `CH TXT stats.dnswild.` answer.
#[derive(Debug, Clone, Copy)]
pub struct Introspection {
    /// When the serving plane started (uptime is measured from here).
    pub started: Instant,
    /// Whether a live metrics endpoint is exposed.
    pub metrics: bool,
}

impl AnswerEngine {
    /// An engine identified as `site_code` (e.g. `"FRA"`), serving `zones`.
    pub fn new(site_code: impl Into<String>, zones: Vec<Zone>) -> Self {
        Self::with_shared_zones(site_code, Arc::new(zones))
    }

    /// An engine over an already-shared zone set.
    pub fn with_shared_zones(site_code: impl Into<String>, zones: Arc<Vec<Zone>>) -> Self {
        AnswerEngine {
            site_code: site_code.into(),
            zones,
            stats: ServerStats::default(),
            telemetry: None,
            introspect: None,
            policy: TruncationPolicy::default(),
            rrl: None,
            verdict_spans: None,
        }
    }

    /// Enables the `CH TXT stats.dnswild.` introspection answer, served
    /// from the given live telemetry counters.
    pub fn with_telemetry(mut self, cell: Arc<SnapshotCell>) -> Self {
        self.telemetry = Some(cell);
        self
    }

    /// Extends the `stats.dnswild.` answer with process introspection
    /// (uptime seconds plus trace/metrics enablement flags).
    pub fn with_introspection(mut self, introspect: Introspection) -> Self {
        self.introspect = Some(introspect);
        self
    }

    /// Sets this site's EDNS/truncation policy (default: advertise and
    /// cap at [`dnswild_proto::DEFAULT_EDNS_PAYLOAD`]).
    pub fn with_truncation_policy(mut self, policy: TruncationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The site's EDNS/truncation policy.
    pub fn truncation_policy(&self) -> TruncationPolicy {
        self.policy
    }

    /// Enables response-rate limiting under `policy` with a fresh
    /// limiter. Forks share the limiter, so one call on the template
    /// engine rate-limits the whole serving plane.
    pub fn with_rate_limit(self, policy: RateLimitPolicy) -> Self {
        self.with_shared_rate_limiter(RateLimiter::shared(policy))
    }

    /// Enables response-rate limiting against an existing shared
    /// limiter (e.g. one limiter spanning several engines of a site).
    pub fn with_shared_rate_limiter(mut self, limiter: SharedRateLimiter) -> Self {
        self.rrl = Some(limiter);
        self
    }

    /// Meters RRL decisions into `{verdict}` histograms.
    pub fn with_verdict_spans(mut self, spans: VerdictSpans) -> Self {
        self.verdict_spans = Some(spans);
        self
    }

    /// The shared rate limiter, when rate limiting is enabled.
    pub fn rate_limiter(&self) -> Option<&SharedRateLimiter> {
        self.rrl.as_ref()
    }

    /// A worker-private copy: same site identity, same shared zones and
    /// telemetry cell, fresh counters.
    pub fn fork(&self) -> AnswerEngine {
        AnswerEngine {
            site_code: self.site_code.clone(),
            zones: Arc::clone(&self.zones),
            stats: ServerStats::default(),
            telemetry: self.telemetry.clone(),
            introspect: self.introspect,
            policy: self.policy,
            rrl: self.rrl.clone(),
            verdict_spans: self.verdict_spans.clone(),
        }
    }

    /// The site identity this engine answers with.
    pub fn site_code(&self) -> &str {
        &self.site_code
    }

    /// Traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Counts a packet dropped before it reached the engine (e.g. a
    /// simulated outage window swallowing traffic).
    pub fn record_drop(&mut self) {
        self.stats.dropped += 1;
    }

    /// Returns the counters accumulated since the last take, resetting
    /// them to zero — how serving-plane workers flush into the shared
    /// atomic aggregate.
    pub fn take_stats(&mut self) -> ServerStats {
        std::mem::take(&mut self.stats)
    }

    /// The zone whose origin is the longest suffix of `qname`.
    pub fn zone_for(&self, qname: &Name) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| qname.is_subdomain_of(z.origin()))
            .max_by_key(|z| z.origin().label_count())
    }

    /// Substitutes the site placeholder in TXT answers.
    fn brand_records(&self, records: Vec<Record>) -> Vec<Record> {
        records
            .into_iter()
            .map(|r| {
                if let RData::Txt(t) = &r.rdata {
                    if t.first_as_string() == SITE_PLACEHOLDER {
                        let branded = Txt::from_string(&format!("site={}", self.site_code))
                            .expect("site code fits in a TXT string");
                        return Record::with_class(r.name, r.class, r.ttl, RData::Txt(branded));
                    }
                }
                r
            })
            .collect()
    }

    fn answer_chaos(&mut self, query: &Message, qname: &Name) -> Message {
        self.stats.chaos += 1;
        let mut resp = Message::response_to(query, Rcode::NoError);
        resp.header.authoritative = true;
        resp.answers.push(Record::with_class(
            qname.clone(),
            Class::Ch,
            0,
            RData::Txt(Txt::from_string(&self.site_code).expect("short site code")),
        ));
        resp
    }

    /// Answers `CH TXT stats.dnswild.` from the live telemetry snapshot
    /// (queries seen, answered, decode errors, ring-overflow drops, the
    /// recursive plane's cache hit/miss/stale tallies, the limiter's
    /// dropped/slipped counts, and the flight recorder's journey books).
    fn answer_stats(&mut self, query: &Message, qname: &Name, cell: &SnapshotCell) -> Message {
        self.stats.chaos += 1;
        let snap = cell.snapshot();
        let mut text = format!(
            "seen={} answered={} decode_errors={} overflow={} cache={}/{}/{} rrl={}/{} journeys={}/{}",
            snap.queries,
            snap.answered,
            snap.decode_errors,
            snap.overflow,
            snap.cache_hits,
            snap.cache_misses,
            snap.cache_stale,
            snap.rrl_dropped,
            snap.rrl_slipped,
            snap.journeys_recorded,
            snap.journeys_dropped
        );
        // With process introspection attached (serving plane only), the
        // answer also carries uptime and which observability planes are
        // up — cross-checkable against the scrape endpoint in one query.
        if let Some(ins) = self.introspect {
            use std::fmt::Write as _;
            let _ = write!(
                text,
                " uptime_s={} trace=1 metrics={}",
                ins.started.elapsed().as_secs(),
                u8::from(ins.metrics)
            );
        }
        let mut resp = Message::response_to(query, Rcode::NoError);
        resp.header.authoritative = true;
        resp.answers.push(Record::with_class(
            qname.clone(),
            Class::Ch,
            0,
            RData::Txt(Txt::from_string(&text).expect("snapshot line fits a TXT string")),
        ));
        resp
    }

    /// Classifies one proper question into a response message.
    fn handle_query(&mut self, query: &Message) -> Option<Message> {
        let question = query.question()?.clone();

        // EDNS version negotiation (RFC 6891 §6.1.3): anything newer
        // than version 0 gets BADVERS — extended RCODE 16, split across
        // our OPT's high bits and a NOERROR header — so the client can
        // retry at version 0.
        if let Some(edns) = query.edns_info() {
            if edns.version != 0 {
                self.stats.badvers += 1;
                let mut out = Edns::new(self.policy.advertise);
                let header_rcode = out.set_extended_rcode(EXTENDED_RCODE_BADVERS);
                let mut resp = Message::response_to(query, header_rcode);
                resp.add_edns_record(&out);
                return Some(resp);
            }
        }

        if question.qclass == Class::Ch {
            let qname_str = question.qname.to_string().to_ascii_lowercase();
            if question.qtype == RType::Txt
                && (qname_str == "hostname.bind." || qname_str == "id.server.")
            {
                return Some(self.answer_chaos(query, &question.qname));
            }
            // `stats.bind`-style runtime introspection, answered only
            // when a telemetry collector is attached (never in the
            // simulation plane, whose outputs must stay byte-identical).
            if question.qtype == RType::Txt && qname_str == "stats.dnswild." {
                if let Some(cell) = self.telemetry.clone() {
                    return Some(self.answer_stats(query, &question.qname, &cell));
                }
            }
            self.stats.refused += 1;
            return Some(Message::response_to(query, Rcode::Refused));
        }

        let Some(zone) = self.zone_for(&question.qname) else {
            self.stats.refused += 1;
            return Some(Message::response_to(query, Rcode::Refused));
        };

        let mut resp = match zone.lookup(&question.qname, question.qtype) {
            Lookup::Answer(records) => {
                self.stats.answers += 1;
                let mut m = Message::response_to(query, Rcode::NoError);
                m.header.authoritative = true;
                m.answers = self.brand_records(records);
                m
            }
            Lookup::NoData { soa } => {
                self.stats.nodata += 1;
                let mut m = Message::response_to(query, Rcode::NoError);
                m.header.authoritative = true;
                m.authorities.push(soa);
                m
            }
            Lookup::NxDomain { soa } => {
                self.stats.nxdomain += 1;
                let mut m = Message::response_to(query, Rcode::NxDomain);
                m.header.authoritative = true;
                m.authorities.push(soa);
                m
            }
            Lookup::Referral { ns, glue } => {
                self.stats.referrals += 1;
                let mut m = Message::response_to(query, Rcode::NoError);
                m.authorities = ns;
                m.additionals = glue;
                m
            }
            Lookup::OutOfZone => {
                self.stats.refused += 1;
                Message::response_to(query, Rcode::Refused)
            }
        };

        // Echo EDNS0 with this site's own payload-size advertisement.
        if query.edns().is_some() {
            resp.add_edns(self.policy.advertise);
        }
        Some(resp)
    }

    /// Turns one inbound packet into at most one response, written into
    /// `resp_buf` (cleared first; left empty when nothing is to be sent).
    ///
    /// This is the single entry point both planes use: malformed-packet
    /// salvage (FORMERR when the header is readable), QR screening,
    /// NOTIMP for non-QUERY opcodes, the zone lookup, and — for
    /// [`TransportKind::Udp`] — replacement of answers exceeding the
    /// client's advertised payload size by an empty TC=1 response
    /// inviting a TCP retry.
    pub fn handle_packet(
        &mut self,
        payload: &[u8],
        transport: TransportKind,
        resp_buf: &mut Vec<u8>,
    ) -> HandledPacket {
        self.handle_packet_spanned(payload, transport, resp_buf, None)
    }

    /// [`AnswerEngine::handle_packet`] with per-stage span timing: when
    /// `spans` is set, the decode / engine / encode stage durations are
    /// recorded into the stage histograms (the transport records the
    /// surrounding recv and send stages). With `None` no clock is read.
    ///
    /// No client key is supplied, so rate limiting never intervenes on
    /// this path — the simulator and the existing `exp_*` outputs stay
    /// byte-identical whatever policy is configured.
    pub fn handle_packet_spanned(
        &mut self,
        payload: &[u8],
        transport: TransportKind,
        resp_buf: &mut Vec<u8>,
        spans: Option<&StageSpans>,
    ) -> HandledPacket {
        self.handle_packet_from(payload, transport, None, resp_buf, spans)
    }

    /// [`AnswerEngine::handle_packet_spanned`] with a client identity:
    /// when rate limiting is enabled and `client_key` is present (the
    /// serving plane derives it via
    /// [`RateLimitPolicy::client_key`]), chargeable UDP responses are
    /// run through the limiter *ahead of encode* — `Answer` proceeds
    /// unchanged, `Slip` replaces the response with a minimal TC=1
    /// reply, `Drop` suppresses it. TCP is never limited: answering
    /// over TCP is exactly what the slip leak invites, and a spoofed
    /// source cannot complete a handshake.
    pub fn handle_packet_from(
        &mut self,
        payload: &[u8],
        transport: TransportKind,
        client_key: Option<u64>,
        resp_buf: &mut Vec<u8>,
        spans: Option<&StageSpans>,
    ) -> HandledPacket {
        resp_buf.clear();
        let mut clock = StageClock::start(spans.is_some());
        let decoded = Message::decode(payload);
        clock.lap(spans, Stage::Decode);
        let query = match decoded {
            Ok(m) => m,
            Err(_) => {
                // Try to salvage the ID for a FORMERR; otherwise drop.
                if payload.len() >= dnswild_proto::Header::WIRE_LEN {
                    let id = u16::from_be_bytes([payload[0], payload[1]]);
                    let resp = Message {
                        header: dnswild_proto::Header {
                            id,
                            response: true,
                            rcode: Rcode::FormErr,
                            ..Default::default()
                        },
                        questions: vec![],
                        answers: vec![],
                        authorities: vec![],
                        additionals: vec![],
                    };
                    self.stats.formerr += 1;
                    if resp.encode_into(resp_buf).is_ok() {
                        return HandledPacket {
                            response: true,
                            query: None,
                            decode_error: true,
                            class: PacketClass::FormErr,
                            rcode: Some(Rcode::FormErr),
                            rrl: None,
                        };
                    }
                    return HandledPacket {
                        response: false,
                        query: None,
                        decode_error: true,
                        class: PacketClass::FormErr,
                        rcode: None,
                        rrl: None,
                    };
                }
                self.stats.dropped += 1;
                return HandledPacket {
                    decode_error: true,
                    ..HandledPacket::drop()
                };
            }
        };

        if query.is_response() {
            self.stats.dropped += 1;
            return HandledPacket::drop();
        }

        if query.header.opcode != Opcode::Query {
            self.stats.notimp += 1;
            let resp = Message::response_to(&query, Rcode::NotImp);
            let sent = resp.encode_into(resp_buf).is_ok();
            return HandledPacket {
                response: sent,
                query: None,
                decode_error: false,
                class: PacketClass::NotImp,
                rcode: sent.then_some(Rcode::NotImp),
                rrl: None,
            };
        }

        // RFC 6891 §6.1.1: a message carrying more than one OPT record
        // is broken at the format level — FORMERR, not a query.
        if query.opt_count() > 1 {
            self.stats.formerr += 1;
            let resp = Message::response_to(&query, Rcode::FormErr);
            let sent = resp.encode_into(resp_buf).is_ok();
            return HandledPacket {
                response: sent,
                query: None,
                decode_error: false,
                class: PacketClass::FormErr,
                rcode: sent.then_some(Rcode::FormErr),
                rrl: None,
            };
        }

        self.stats.queries += 1;
        if transport == TransportKind::Tcp {
            self.stats.tcp_queries += 1;
        }
        let view = query
            .question()
            .map(|q| QueryView { qname: q.qname.clone(), qtype: q.qtype });

        let outcomes_before = self.stats;
        let answered = self.handle_query(&query);
        clock.lap(spans, Stage::Engine);
        let Some(resp) = answered else {
            return HandledPacket {
                response: false,
                query: view,
                decode_error: false,
                class: PacketClass::Query,
                rcode: None,
                rrl: None,
            };
        };
        // Response-rate limiting, ahead of encode: abusive response
        // classes (or everything, under `RrlScope::All`) are charged
        // against the client's token bucket, and NXDOMAINs additionally
        // against the site-wide budget. The query was already counted
        // in `queries` and its outcome counter above, so the stats
        // books balance whatever the verdict; `rrl_dropped` /
        // `rrl_slipped` record what the limiter did on top.
        if transport == TransportKind::Udp && self.rrl.is_some() {
            if let (Some(key), Some(rrl)) = (client_key, self.rrl.clone()) {
                let started = self.verdict_spans.as_ref().map(|_| Instant::now());
                let mut limiter = rrl.lock().expect("rate limiter mutex poisoned");
                let is_nxdomain = self.stats.nxdomain > outcomes_before.nxdomain;
                let charged = match limiter.policy().scope {
                    RrlScope::All => true,
                    RrlScope::Abusive => {
                        is_nxdomain
                            || self.stats.referrals > outcomes_before.referrals
                            || self.stats.refused > outcomes_before.refused
                    }
                };
                let decision = charged.then(|| limiter.verdict(key, is_nxdomain));
                drop(limiter);
                if let Some(d) = decision {
                    if let (Some(t0), Some(vs)) = (started, self.verdict_spans.as_ref()) {
                        vs.record(d.verdict, t0.elapsed().as_nanos() as u64);
                    }
                    if d.evicted {
                        self.stats.bucket_evictions += 1;
                    }
                    match d.verdict {
                        RrlVerdict::Answer => {}
                        RrlVerdict::Slip => {
                            self.stats.rrl_slipped += 1;
                            let mut tc = Message::response_to(&query, resp.rcode());
                            tc.header.authoritative = resp.header.authoritative;
                            tc.header.truncated = true;
                            if query.edns().is_some() {
                                tc.add_edns(self.policy.advertise);
                            }
                            let sent = tc.encode_into(resp_buf).is_ok();
                            clock.lap(spans, Stage::Encode);
                            return HandledPacket {
                                response: sent,
                                query: view,
                                decode_error: false,
                                class: PacketClass::Query,
                                rcode: sent.then(|| resp.rcode()),
                                rrl: Some(RrlVerdict::Slip),
                            };
                        }
                        RrlVerdict::Drop => {
                            self.stats.rrl_dropped += 1;
                            return HandledPacket {
                                response: false,
                                query: view,
                                decode_error: false,
                                class: PacketClass::Query,
                                rcode: None,
                                rrl: Some(RrlVerdict::Drop),
                            };
                        }
                    }
                }
            }
        }
        if resp.encode_into(resp_buf).is_err() {
            return HandledPacket {
                response: false,
                query: view,
                decode_error: false,
                class: PacketClass::Query,
                rcode: None,
                rrl: None,
            };
        }
        // UDP responses must fit the negotiated payload limit — the
        // client's clamped EDNS advertisement capped by the per-site
        // policy, or the 512-byte floor without EDNS. Oversized answers
        // are replaced by an empty TC=1 response inviting a TCP retry.
        let limit = self.policy.udp_limit(query.edns_info().as_ref());
        if transport == TransportKind::Udp && resp_buf.len() > limit {
            self.stats.truncated += 1;
            let mut tc = Message::response_to(&query, resp.rcode());
            tc.header.authoritative = resp.header.authoritative;
            tc.header.truncated = true;
            if query.edns().is_some() {
                tc.add_edns(self.policy.advertise);
            }
            tc.encode_into(resp_buf).expect("truncated response encodes");
        }
        clock.lap(spans, Stage::Encode);
        HandledPacket {
            response: true,
            query: view,
            decode_error: false,
            class: PacketClass::Query,
            rcode: Some(resp.rcode()),
            rrl: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswild_proto::Question;
    use dnswild_zone::presets::test_domain_zone;

    fn origin() -> Name {
        Name::parse("ourtestdomain.nl").unwrap()
    }

    fn engine() -> AnswerEngine {
        AnswerEngine::new("FRA", vec![test_domain_zone(&origin(), 2)])
    }

    /// Runs one packet through a fresh engine, decoding the response.
    fn run(payload: &[u8], transport: TransportKind) -> (Option<Message>, ServerStats) {
        let mut e = engine();
        let mut buf = Vec::new();
        let handled = e.handle_packet(payload, transport, &mut buf);
        let resp = handled.response.then(|| Message::decode(&buf).expect("decodable response"));
        (resp, e.stats())
    }

    #[test]
    fn probe_txt_branded_without_a_simulator() {
        let q = Message::iterative_query(1, origin().prepend("p1-r1").unwrap(), RType::Txt);
        let (resp, stats) = run(&q.encode().unwrap(), TransportKind::Udp);
        let resp = resp.expect("answered");
        assert!(resp.header.authoritative);
        let RData::Txt(t) = &resp.answers[0].rdata else { panic!("not TXT") };
        assert_eq!(t.first_as_string(), "site=FRA");
        assert_eq!(stats.answers, 1);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn off_zone_is_refused() {
        let q = Message::iterative_query(2, Name::parse("example.com").unwrap(), RType::A);
        let (resp, stats) = run(&q.encode().unwrap(), TransportKind::Udp);
        assert_eq!(resp.unwrap().rcode(), Rcode::Refused);
        assert_eq!(stats.refused, 1);
    }

    #[test]
    fn non_query_opcode_is_notimp() {
        let mut q = Message::iterative_query(3, origin(), RType::A);
        q.header.opcode = Opcode::Update;
        let (resp, stats) = run(&q.encode().unwrap(), TransportKind::Udp);
        assert_eq!(resp.unwrap().rcode(), Rcode::NotImp);
        assert_eq!(stats.notimp, 1);
        assert_eq!(stats.queries, 0, "NOTIMP packets are not counted as queries");
    }

    #[test]
    fn garbage_with_readable_header_gets_formerr() {
        let mut garbage = vec![0u8; 12];
        garbage[0] = 0xab;
        garbage[1] = 0xcd;
        garbage.push(0xff); // trailing byte → decode error
        let (resp, stats) = run(&garbage, TransportKind::Udp);
        let resp = resp.expect("FORMERR sent");
        assert_eq!(resp.rcode(), Rcode::FormErr);
        assert_eq!(resp.header.id, 0xabcd);
        assert_eq!(stats.formerr, 1);
    }

    #[test]
    fn truncated_header_is_dropped_silently() {
        let (resp, stats) = run(&[0xab, 0xcd, 0x00], TransportKind::Udp);
        assert!(resp.is_none());
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.formerr, 0);
    }

    #[test]
    fn responses_are_dropped() {
        let q = Message::iterative_query(4, origin(), RType::Ns);
        let resp = Message::response_to(&q, Rcode::NoError);
        let (out, stats) = run(&resp.encode().unwrap(), TransportKind::Udp);
        assert!(out.is_none());
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn undersized_payload_gets_tc_over_udp_but_not_tcp() {
        use dnswild_proto::rdata::Txt;
        let mut zone = test_domain_zone(&origin(), 1);
        let strings: Vec<Vec<u8>> = (0..3).map(|i| vec![b'x' + i as u8; 230]).collect();
        zone.insert(Record::new(
            origin().prepend("mid").unwrap(),
            60,
            RData::Txt(Txt::new(strings).unwrap()),
        ));
        let mut e = AnswerEngine::new("FRA", vec![zone]);
        // ~700B answer, no EDNS → 512-byte limit → TC=1 over UDP.
        let mut q = Message::iterative_query(5, origin().prepend("mid").unwrap(), RType::Txt);
        q.additionals.clear();
        let payload = q.encode().unwrap();
        let mut buf = Vec::new();
        assert!(e.handle_packet(&payload, TransportKind::Udp, &mut buf).response);
        let udp = Message::decode(&buf).unwrap();
        assert!(udp.header.truncated);
        assert!(udp.answers.is_empty());
        // The same query over TCP returns the full answer.
        assert!(e.handle_packet(&payload, TransportKind::Tcp, &mut buf).response);
        let tcp = Message::decode(&buf).unwrap();
        assert!(!tcp.header.truncated);
        assert_eq!(tcp.answers.len(), 1);
        let stats = e.stats();
        assert_eq!(stats.truncated, 1);
        assert_eq!(stats.tcp_queries, 1);
        assert_eq!(stats.queries, 2);
    }

    /// A zone whose `mid.<origin>` TXT answer encodes to roughly
    /// `payload` bytes — the knob the truncation-policy tests turn.
    fn zone_with_txt_of(origin: &Name, total: usize) -> dnswild_zone::Zone {
        use dnswild_proto::rdata::Txt;
        let mut zone = test_domain_zone(origin, 1);
        let strings: Vec<Vec<u8>> =
            (0..total.div_ceil(200)).map(|i| vec![b'a' + i as u8; 200]).collect();
        zone.insert(Record::new(
            origin.prepend("mid").unwrap(),
            60,
            RData::Txt(Txt::new(strings).unwrap()),
        ));
        zone
    }

    #[test]
    fn payload_below_512_clamps_to_512() {
        // ~300B answer; a client advertising 100 bytes still gets it
        // whole, because RFC 6891 clamps advertisements up to 512.
        let mut e = AnswerEngine::new("FRA", vec![zone_with_txt_of(&origin(), 280)]);
        let mut q = Message::iterative_query(41, origin().prepend("mid").unwrap(), RType::Txt);
        q.additionals.clear();
        q.add_edns(100);
        let mut buf = Vec::new();
        assert!(e.handle_packet(&q.encode().unwrap(), TransportKind::Udp, &mut buf).response);
        let resp = Message::decode(&buf).unwrap();
        assert!(!resp.header.truncated, "clamped limit is 512, answer fits");
        assert_eq!(resp.answers.len(), 1);
        assert!(buf.len() > 100 && buf.len() <= 512);
        assert_eq!(e.stats().truncated, 0);
    }

    #[test]
    fn duplicate_opt_records_get_formerr() {
        let mut q = Message::iterative_query(42, origin().prepend("p1-r1").unwrap(), RType::Txt);
        q.add_edns(4096); // iterative_query already added one OPT
        assert_eq!(q.opt_count(), 2);
        let (resp, stats) = run(&q.encode().unwrap(), TransportKind::Udp);
        assert_eq!(resp.unwrap().rcode(), Rcode::FormErr);
        assert_eq!(stats.formerr, 1);
        assert_eq!(stats.queries, 0, "a FORMERR packet is not a query");
        assert_eq!(stats.packets_seen(), 1);
    }

    #[test]
    fn unknown_edns_version_gets_badvers() {
        let mut q = Message::iterative_query(43, origin().prepend("p1-r1").unwrap(), RType::Txt);
        q.additionals.clear();
        let mut edns = dnswild_proto::Edns::new(1232);
        edns.version = 1;
        q.add_edns_record(&edns);
        let (resp, stats) = run(&q.encode().unwrap(), TransportKind::Udp);
        let resp = resp.unwrap();
        assert_eq!(resp.rcode(), Rcode::NoError, "low 4 bits of BADVERS are zero");
        assert_eq!(resp.extended_rcode(), dnswild_proto::EXTENDED_RCODE_BADVERS);
        let echoed = resp.edns_info().expect("OPT echoed");
        assert_eq!(echoed.version, 0, "we answer at the version we speak");
        assert!(resp.answers.is_empty(), "BADVERS carries no answer");
        assert_eq!(stats.badvers, 1);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.question_outcomes(), 1);
    }

    #[test]
    fn policy_caps_client_advertisement() {
        // ~700B answer; the client advertises 4096 but the site policy
        // caps UDP at 512 → TC=1. The TC response echoes the policy's
        // own advertisement.
        let policy = TruncationPolicy::symmetric(512);
        let mut e = AnswerEngine::new("FRA", vec![zone_with_txt_of(&origin(), 680)])
            .with_truncation_policy(policy);
        assert_eq!(e.truncation_policy(), policy);
        let mut q = Message::iterative_query(44, origin().prepend("mid").unwrap(), RType::Txt);
        q.additionals.clear();
        q.add_edns(4096);
        let mut buf = Vec::new();
        assert!(e.handle_packet(&q.encode().unwrap(), TransportKind::Udp, &mut buf).response);
        let resp = Message::decode(&buf).unwrap();
        assert!(resp.header.truncated);
        assert_eq!(resp.edns_payload_size(), Some(512), "TC echoes the site's advertisement");
        assert_eq!(e.stats().truncated, 1);
        // Forked workers inherit the policy.
        assert_eq!(e.fork().truncation_policy(), policy);
    }

    #[test]
    fn chaos_hostname_bind_identifies_site() {
        let mut q = Message::iterative_query(6, Name::parse("hostname.bind").unwrap(), RType::Txt);
        q.questions[0].qclass = Class::Ch;
        let (resp, stats) = run(&q.encode().unwrap(), TransportKind::Udp);
        let RData::Txt(t) = &resp.unwrap().answers[0].rdata else { panic!("not TXT") };
        assert_eq!(t.first_as_string(), "FRA");
        assert_eq!(stats.chaos, 1);
    }

    #[test]
    fn stats_dnswild_refused_without_telemetry() {
        // The sim plane never attaches a collector, so this stays
        // REFUSED there — the exp_* outputs depend on it.
        let mut q =
            Message::iterative_query(11, Name::parse("stats.dnswild").unwrap(), RType::Txt);
        q.questions[0].qclass = Class::Ch;
        let (resp, stats) = run(&q.encode().unwrap(), TransportKind::Udp);
        assert_eq!(resp.unwrap().rcode(), Rcode::Refused);
        assert_eq!(stats.refused, 1);
        assert_eq!(stats.chaos, 0);
    }

    #[test]
    fn stats_dnswild_answers_from_snapshot_when_traced() {
        let cell = Arc::new(dnswild_telemetry::SnapshotCell::default());
        let mut e = engine().with_telemetry(Arc::clone(&cell));
        let mut q =
            Message::iterative_query(12, Name::parse("stats.dnswild").unwrap(), RType::Txt);
        q.questions[0].qclass = Class::Ch;
        let payload = q.encode().unwrap();
        let mut buf = Vec::new();
        let handled = e.handle_packet(&payload, TransportKind::Udp, &mut buf);
        assert!(handled.response);
        assert_eq!(handled.rcode, Some(Rcode::NoError));
        let resp = Message::decode(&buf).unwrap();
        let RData::Txt(t) = &resp.answers[0].rdata else { panic!("not TXT") };
        assert_eq!(
            t.first_as_string(),
            "seen=0 answered=0 decode_errors=0 overflow=0 cache=0/0/0 rrl=0/0 journeys=0/0"
        );
        assert_eq!(e.stats().chaos, 1);
        // The fork keeps the telemetry hookup.
        let mut f = e.fork();
        assert!(f.handle_packet(&payload, TransportKind::Udp, &mut buf).response);
        assert_eq!(f.stats().chaos, 1);
        assert_eq!(f.stats().refused, 0);
    }

    #[test]
    fn stats_dnswild_carries_uptime_and_plane_flags_with_introspection() {
        let cell = Arc::new(dnswild_telemetry::SnapshotCell::default());
        let e = engine()
            .with_telemetry(cell)
            .with_introspection(Introspection { started: Instant::now(), metrics: true });
        let mut q =
            Message::iterative_query(21, Name::parse("stats.dnswild").unwrap(), RType::Txt);
        q.questions[0].qclass = Class::Ch;
        let payload = q.encode().unwrap();
        let mut buf = Vec::new();
        // The fork keeps the introspection hookup, like the telemetry one.
        let mut f = e.fork();
        assert!(f.handle_packet(&payload, TransportKind::Udp, &mut buf).response);
        let resp = Message::decode(&buf).unwrap();
        let RData::Txt(t) = &resp.answers[0].rdata else { panic!("not TXT") };
        let text = t.first_as_string();
        assert!(
            text.starts_with(
                "seen=0 answered=0 decode_errors=0 overflow=0 cache=0/0/0 rrl=0/0 journeys=0/0 uptime_s="
            ),
            "got {text:?}"
        );
        assert!(text.ends_with(" trace=1 metrics=1"), "got {text:?}");
        let _ = e;
    }

    #[test]
    fn spanned_packets_record_decode_engine_encode_stages() {
        let reg = Arc::new(dnswild_metrics::Registry::new());
        let spans = StageSpans::register(&reg);
        let mut e = engine();
        let mut buf = Vec::new();
        let q = Message::iterative_query(31, origin().prepend("p1-r1").unwrap(), RType::Txt);
        let h =
            e.handle_packet_spanned(&q.encode().unwrap(), TransportKind::Udp, &mut buf, Some(&spans));
        assert!(h.response);
        for stage in [Stage::Decode, Stage::Engine, Stage::Encode] {
            assert_eq!(spans.histogram(stage).count(), 1, "{}", stage.name());
        }
        // Recv/send belong to the transport, not the engine.
        assert_eq!(spans.histogram(Stage::Recv).count(), 0);
        assert_eq!(spans.histogram(Stage::Send).count(), 0);
        // An undecodable datagram still times its decode stage.
        e.handle_packet_spanned(&[0u8; 2], TransportKind::Udp, &mut buf, Some(&spans));
        assert_eq!(spans.histogram(Stage::Decode).count(), 2);
        assert_eq!(spans.histogram(Stage::Engine).count(), 1);
    }

    #[test]
    fn handled_packet_classifies_every_path() {
        let mut e = engine();
        let mut buf = Vec::new();
        let q = Message::iterative_query(13, origin().prepend("p1-q1").unwrap(), RType::Txt);
        let h = e.handle_packet(&q.encode().unwrap(), TransportKind::Udp, &mut buf);
        assert_eq!(h.class, PacketClass::Query);
        assert_eq!(h.rcode, Some(Rcode::NoError));
        let mut upd = Message::iterative_query(14, origin().prepend("x").unwrap(), RType::A);
        upd.header.opcode = Opcode::Update;
        let h = e.handle_packet(&upd.encode().unwrap(), TransportKind::Udp, &mut buf);
        assert_eq!(h.class, PacketClass::NotImp);
        assert_eq!(h.rcode, Some(Rcode::NotImp));
        let mut garbage = vec![0u8; 12];
        garbage.push(0xff);
        let h = e.handle_packet(&garbage, TransportKind::Udp, &mut buf);
        assert_eq!(h.class, PacketClass::FormErr);
        assert_eq!(h.rcode, Some(Rcode::FormErr));
        let h = e.handle_packet(&[0x01, 0x02], TransportKind::Udp, &mut buf);
        assert_eq!(h.class, PacketClass::Dropped);
        assert_eq!(h.rcode, None);
        // One packet, one class: the four calls above land in four
        // distinct packets_seen counters.
        let s = e.stats();
        assert_eq!(s.packets_seen(), 4);
        assert_eq!((s.queries, s.notimp, s.formerr, s.dropped), (1, 1, 1, 1));
    }

    #[test]
    fn chaos_other_name_refused() {
        let q = Message {
            header: dnswild_proto::Header { id: 7, ..Default::default() },
            questions: vec![Question::chaos(Name::parse("version.bind").unwrap(), RType::Txt)],
            answers: vec![],
            authorities: vec![],
            additionals: vec![],
        };
        let (resp, stats) = run(&q.encode().unwrap(), TransportKind::Udp);
        assert_eq!(resp.unwrap().rcode(), Rcode::Refused);
        assert_eq!(stats.refused, 1);
    }

    #[test]
    fn forked_engines_share_zones_but_not_stats() {
        let mut a = engine();
        let mut b = a.fork();
        let q = Message::iterative_query(8, origin().prepend("x").unwrap(), RType::Txt);
        let payload = q.encode().unwrap();
        let mut buf = Vec::new();
        a.handle_packet(&payload, TransportKind::Udp, &mut buf);
        a.handle_packet(&payload, TransportKind::Udp, &mut buf);
        b.handle_packet(&payload, TransportKind::Udp, &mut buf);
        assert_eq!(a.stats().answers, 2);
        assert_eq!(b.stats().answers, 1);
        let merged = ServerStats::aggregate([a.take_stats(), b.take_stats()]);
        assert_eq!(merged.answers, 3);
        assert_eq!(merged.queries, 3);
        assert_eq!(a.stats(), ServerStats::default(), "take_stats resets");
    }

    #[test]
    fn stats_add_covers_every_field() {
        let ones = ServerStats {
            queries: 1,
            answers: 1,
            nxdomain: 1,
            nodata: 1,
            referrals: 1,
            refused: 1,
            formerr: 1,
            notimp: 1,
            chaos: 1,
            badvers: 1,
            truncated: 1,
            tcp_queries: 1,
            dropped: 1,
            rrl_dropped: 1,
            rrl_slipped: 1,
            bucket_evictions: 1,
        };
        let sum = ServerStats::aggregate([ones, ones, ones]);
        assert_eq!(sum, ServerStats {
            queries: 3,
            answers: 3,
            nxdomain: 3,
            nodata: 3,
            referrals: 3,
            refused: 3,
            formerr: 3,
            notimp: 3,
            chaos: 3,
            badvers: 3,
            truncated: 3,
            tcp_queries: 3,
            dropped: 3,
            rrl_dropped: 3,
            rrl_slipped: 3,
            bucket_evictions: 3,
        });
        assert_eq!(ones.question_outcomes(), 7);
        let mut acc = ServerStats::default();
        acc += ones;
        acc += ones;
        assert_eq!(acc, ones + ones);
    }

    /// An NXDOMAIN-generating query against the preset zone: the
    /// wildcard only synthesises at the closest encloser, so names
    /// below the existing-but-empty `void.<origin>` node miss it.
    fn nx_query(id: u16, n: u32) -> Message {
        let mut zone_name = origin().prepend("void").unwrap();
        zone_name = zone_name.prepend(&format!("wt{n:04x}")).unwrap();
        Message::iterative_query(id, zone_name, RType::A)
    }

    fn rrl_engine(policy: crate::rrl::RateLimitPolicy) -> AnswerEngine {
        use dnswild_proto::Record;
        let mut zone = test_domain_zone(&origin(), 2);
        // An empty-looking anchor node: existing, no wildcard below it,
        // so anything under it is NXDOMAIN (see crate::rrl docs).
        zone.insert(Record::new(
            origin().prepend("void").unwrap(),
            60,
            RData::Txt(dnswild_proto::rdata::Txt::from_string("nx-anchor").unwrap()),
        ));
        AnswerEngine::new("FRA", vec![zone]).with_rate_limit(policy)
    }

    #[test]
    fn rrl_drop_suppresses_response_but_books_balance() {
        use crate::rrl::{RateLimitPolicy, RrlVerdict};
        // burst 2, no refill, no slip: queries 3+ are dropped.
        let policy = RateLimitPolicy {
            burst: 2,
            rate: 0,
            period: 1,
            slip: 0,
            ..RateLimitPolicy::default()
        };
        let mut e = rrl_engine(policy);
        let key = Some(7u64);
        let mut buf = Vec::new();
        for n in 0..5 {
            let q = nx_query(n as u16, n).encode().unwrap();
            let h = e.handle_packet_from(&q, TransportKind::Udp, key, &mut buf, None);
            if n < 2 {
                assert!(h.response);
                assert_eq!(h.rrl, None);
            } else {
                assert!(!h.response, "query {n} must be rate-dropped");
                assert_eq!(h.rrl, Some(RrlVerdict::Drop));
                assert!(buf.is_empty());
            }
        }
        let s = e.stats();
        assert_eq!(s.queries, 5);
        assert_eq!(s.nxdomain, 5, "RRL happens after classification");
        assert_eq!(s.rrl_dropped, 3);
        assert_eq!(s.question_outcomes(), s.queries);
        assert_eq!(s.packets_seen(), 5);
    }

    #[test]
    fn rrl_slip_sends_minimal_tc_reply() {
        use crate::rrl::{RateLimitPolicy, RrlVerdict};
        // burst 0, slip 1: every charged response slips as TC=1.
        let policy = RateLimitPolicy {
            burst: 0,
            rate: 0,
            period: 1,
            slip: 1,
            ..RateLimitPolicy::default()
        };
        let mut e = rrl_engine(policy);
        let mut buf = Vec::new();
        let q = nx_query(1, 1).encode().unwrap();
        let h = e.handle_packet_from(&q, TransportKind::Udp, Some(9), &mut buf, None);
        assert!(h.response);
        assert_eq!(h.rrl, Some(RrlVerdict::Slip));
        let resp = Message::decode(&buf).unwrap();
        assert!(resp.header.truncated, "slip answers carry TC=1");
        assert!(resp.answers.is_empty() && resp.authorities.is_empty());
        assert_eq!(resp.rcode(), Rcode::NxDomain);
        let s = e.stats();
        assert_eq!(s.rrl_slipped, 1);
        assert_eq!(s.truncated, 0, "slip is not size-driven truncation");
    }

    #[test]
    fn rrl_abusive_scope_leaves_positive_answers_alone() {
        use crate::rrl::RateLimitPolicy;
        // burst 0 limits every *charged* query — but positive answers
        // are never charged under the default Abusive scope.
        let policy = RateLimitPolicy {
            burst: 0,
            rate: 0,
            period: 1,
            ..RateLimitPolicy::default()
        };
        let mut e = rrl_engine(policy);
        let mut buf = Vec::new();
        let q = Message::iterative_query(1, origin().prepend("p1-r1").unwrap(), RType::Txt);
        let h =
            e.handle_packet_from(&q.encode().unwrap(), TransportKind::Udp, Some(3), &mut buf, None);
        assert!(h.response);
        assert_eq!(h.rrl, None);
        assert_eq!(e.stats().answers, 1);
        assert_eq!(e.stats().rrl_dropped + e.stats().rrl_slipped, 0);
    }

    #[test]
    fn rrl_never_limits_tcp_or_unkeyed_packets() {
        use crate::rrl::RateLimitPolicy;
        let policy = RateLimitPolicy {
            burst: 0,
            rate: 0,
            period: 1,
            slip: 0,
            ..RateLimitPolicy::default()
        };
        let mut e = rrl_engine(policy);
        let mut buf = Vec::new();
        let q = nx_query(1, 1).encode().unwrap();
        // TCP: the slip leak's whole point is that TCP completes.
        let h = e.handle_packet_from(&q, TransportKind::Tcp, Some(3), &mut buf, None);
        assert!(h.response);
        assert_eq!(h.rrl, None);
        // No key (the simulator path): limiter never consulted.
        let h = e.handle_packet_from(&q, TransportKind::Udp, None, &mut buf, None);
        assert!(h.response);
        assert_eq!(h.rrl, None);
        assert_eq!(e.stats().rrl_dropped + e.stats().rrl_slipped, 0);
    }

    #[test]
    fn rrl_forks_share_one_limiter() {
        use crate::rrl::{RateLimitPolicy, RrlVerdict};
        let policy = RateLimitPolicy {
            burst: 2,
            rate: 0,
            period: 1,
            slip: 0,
            ..RateLimitPolicy::default()
        };
        let mut a = rrl_engine(policy);
        let mut b = a.fork();
        let mut buf = Vec::new();
        // Two charged queries through A exhaust the shared bucket...
        for n in 0..2 {
            let q = nx_query(n as u16, n).encode().unwrap();
            assert!(a.handle_packet_from(&q, TransportKind::Udp, Some(5), &mut buf, None).response);
        }
        // ...so the fork's next query for the same key drops.
        let q = nx_query(9, 9).encode().unwrap();
        let h = b.handle_packet_from(&q, TransportKind::Udp, Some(5), &mut buf, None);
        assert_eq!(h.rrl, Some(RrlVerdict::Drop));
        let merged = ServerStats::aggregate([a.take_stats(), b.take_stats()]);
        assert_eq!(merged.rrl_dropped, 1);
        assert_eq!(merged.question_outcomes(), merged.queries);
    }

    #[test]
    fn rrl_verdict_spans_record_decision_times() {
        use crate::rrl::{RateLimitPolicy, RrlVerdict, VerdictSpans};
        let reg = dnswild_metrics::Registry::new();
        let spans = VerdictSpans::register(&reg);
        let policy = RateLimitPolicy {
            burst: 1,
            rate: 0,
            period: 1,
            slip: 0,
            ..RateLimitPolicy::default()
        };
        let mut e = rrl_engine(policy).with_verdict_spans(spans.clone());
        let mut buf = Vec::new();
        for n in 0..3 {
            let q = nx_query(n as u16, n).encode().unwrap();
            e.handle_packet_from(&q, TransportKind::Udp, Some(1), &mut buf, None);
        }
        assert_eq!(spans.histogram(RrlVerdict::Answer).count(), 1);
        assert_eq!(spans.histogram(RrlVerdict::Drop).count(), 2);
    }
}
