//! Ready-made zones for the reproduction experiments.

use dnswild_proto::rdata::{Ns, Soa, Txt, A};
use dnswild_proto::{Name, RData, Record};
use std::net::Ipv4Addr;

use crate::zone::Zone;

/// The placeholder the authoritative server substitutes with its own site
/// identity when answering probe TXT queries (the paper's trick of giving
/// each NS a different response for the same record).
pub const SITE_PLACEHOLDER: &str = "@SITE@";

/// TTL of the probe TXT record; the paper uses 5 seconds so responses
/// never survive in record caches between probe rounds.
pub const PROBE_TTL: u32 = 5;

/// Builds the measurement zone: `origin` with `ns_count` name servers
/// (`ns1` … `nsN`) and a wildcard TXT at the apex answering any unique
/// probe label with [`SITE_PLACEHOLDER`].
///
/// The NS A records here are decorative (the simulator routes by
/// `SimAddr`); they make the zone well-formed and give
/// the delegation realistic glue.
pub fn test_domain_zone(origin: &Name, ns_count: usize) -> Zone {
    assert!(ns_count >= 1, "a zone needs at least one NS");
    let mut zone = Zone::new(origin.clone());
    zone.insert(Record::new(
        origin.clone(),
        3600,
        RData::Soa(Soa::new(
            origin.prepend("ns1").expect("short label"),
            origin.prepend("hostmaster").expect("short label"),
            2017041201,
            7200,
            3600,
            604800,
            300,
        )),
    ));
    for i in 1..=ns_count {
        let ns_name = origin.prepend(&format!("ns{i}")).expect("short label");
        zone.insert(Record::new(origin.clone(), 3600, RData::Ns(Ns::new(ns_name.clone()))));
        zone.insert(Record::new(
            ns_name,
            3600,
            RData::A(A::new(Ipv4Addr::new(203, 0, 113, i as u8))),
        ));
    }
    zone.insert(Record::new(
        origin.prepend("*").expect("short label"),
        PROBE_TTL,
        RData::Txt(Txt::from_string(SITE_PLACEHOLDER).expect("short string")),
    ));
    zone
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Lookup;
    use dnswild_proto::RType;

    #[test]
    fn zone_answers_unique_labels() {
        let origin = Name::parse("ourtestdomain.nl").unwrap();
        let zone = test_domain_zone(&origin, 4);
        assert_eq!(zone.apex_ns().unwrap().len(), 4);
        let q = Name::parse("p99-round3.ourtestdomain.nl").unwrap();
        match zone.lookup(&q, RType::Txt) {
            Lookup::Answer(recs) => {
                assert_eq!(recs[0].ttl, PROBE_TTL);
                if let RData::Txt(t) = &recs[0].rdata {
                    assert_eq!(t.first_as_string(), SITE_PLACEHOLDER);
                } else {
                    panic!("not TXT");
                }
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one NS")]
    fn zero_ns_rejected() {
        let origin = Name::parse("x.nl").unwrap();
        test_domain_zone(&origin, 0);
    }
}
