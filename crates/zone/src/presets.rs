//! Ready-made zones for the reproduction experiments.

use dnswild_proto::rdata::{Ns, Soa, Txt, A};
use dnswild_proto::{Name, RData, Record};
use std::net::Ipv4Addr;

use crate::zone::Zone;

/// The placeholder the authoritative server substitutes with its own site
/// identity when answering probe TXT queries (the paper's trick of giving
/// each NS a different response for the same record).
pub const SITE_PLACEHOLDER: &str = "@SITE@";

/// TTL of the probe TXT record; the paper uses 5 seconds so responses
/// never survive in record caches between probe rounds.
pub const PROBE_TTL: u32 = 5;

/// Builds the measurement zone: `origin` with `ns_count` name servers
/// (`ns1` … `nsN`) and a wildcard TXT at the apex answering any unique
/// probe label with [`SITE_PLACEHOLDER`].
///
/// The NS A records here are decorative (the simulator routes by
/// `SimAddr`); they make the zone well-formed and give
/// the delegation realistic glue.
pub fn test_domain_zone(origin: &Name, ns_count: usize) -> Zone {
    probe_ttl_test_domain_zone(origin, ns_count, PROBE_TTL)
}

/// [`test_domain_zone`] with an explicit TTL on the wildcard probe
/// record — the knob the caching-recursive experiments turn: a low TTL
/// ages a warm cache quickly (the §4.4 cache-decay setup), a high one
/// keeps hit rates pinned.
pub fn probe_ttl_test_domain_zone(origin: &Name, ns_count: usize, probe_ttl: u32) -> Zone {
    assert!(ns_count >= 1, "a zone needs at least one NS");
    let mut zone = Zone::new(origin.clone());
    zone.insert(Record::new(
        origin.clone(),
        3600,
        RData::Soa(Soa::new(
            origin.prepend("ns1").expect("short label"),
            origin.prepend("hostmaster").expect("short label"),
            2017041201,
            7200,
            3600,
            604800,
            300,
        )),
    ));
    for i in 1..=ns_count {
        let ns_name = origin.prepend(&format!("ns{i}")).expect("short label");
        zone.insert(Record::new(origin.clone(), 3600, RData::Ns(Ns::new(ns_name.clone()))));
        zone.insert(Record::new(
            ns_name,
            3600,
            RData::A(A::new(Ipv4Addr::new(203, 0, 113, i as u8))),
        ));
    }
    zone.insert(Record::new(
        origin.prepend("*").expect("short label"),
        probe_ttl,
        RData::Txt(Txt::from_string(SITE_PLACEHOLDER).expect("short string")),
    ));
    zone
}

/// [`test_domain_zone`] with the wildcard TXT RRset padded so every
/// probe answer's rdata totals at least `pad_bytes` — big enough to
/// overflow a small negotiated EDNS payload and force TC=1 on UDP,
/// which is how the truncation → TCP-retry path is exercised end to
/// end. The site-placeholder record is kept as the RRset's *first*
/// record (the server still brands it); padding rides in extra TXT
/// records of opaque 200-octet strings.
pub fn padded_test_domain_zone(origin: &Name, ns_count: usize, pad_bytes: usize) -> Zone {
    let mut zone = test_domain_zone(origin, ns_count);
    if pad_bytes == 0 {
        return zone;
    }
    let chunk = vec![b'x'; 200];
    let strings = vec![chunk; pad_bytes.div_ceil(200)];
    zone.insert(Record::new(
        origin.prepend("*").expect("short label"),
        PROBE_TTL,
        RData::Txt(Txt::new(strings).expect("short strings")),
    ));
    zone
}

/// The label whose subtree anchors NXDOMAINs in the attack zone: the
/// node exists (so the apex wildcard does not cover names below it —
/// wildcard synthesis only happens at the closest encloser), but it has
/// no wildcard child, so `anything.void.<origin>` is NXDOMAIN.
pub const NX_ANCHOR_LABEL: &str = "void";

/// The delegated label of the attack zone: `lab.<origin>` is a zone
/// cut, so any name at or below it draws a referral.
pub const DELEGATION_LABEL: &str = "lab";

/// [`test_domain_zone`] extended into the adversarial-workload zone:
///
/// * `void.<origin>` — an ordinary TXT node with no wildcard below it,
///   so random-subdomain ("water torture") queries like
///   `wt3f9a.void.<origin>` are honest NXDOMAINs while the apex
///   wildcard keeps answering legitimate probe labels;
/// * `lab.<origin>` — a delegation fattened with `delegation_ns` NS
///   records (`dns1.lab.<origin>` …) plus one A glue record each, the
///   NXNSAttack amplification vector: a ~45-byte query for any name
///   under `lab` pulls a referral carrying the whole NS+glue set.
pub fn attack_test_domain_zone(origin: &Name, ns_count: usize, delegation_ns: usize) -> Zone {
    assert!(delegation_ns >= 1, "a delegation needs at least one NS");
    assert!(delegation_ns <= 100, "glue addressing supports at most 100 delegation NS");
    let mut zone = test_domain_zone(origin, ns_count);
    let anchor = origin.prepend(NX_ANCHOR_LABEL).expect("short label");
    zone.insert(Record::new(
        anchor,
        3600,
        RData::Txt(Txt::from_string("nx-anchor").expect("short string")),
    ));
    let cut = origin.prepend(DELEGATION_LABEL).expect("short label");
    for i in 1..=delegation_ns {
        let ns_name = cut.prepend(&format!("dns{i}")).expect("short label");
        zone.insert(Record::new(cut.clone(), 3600, RData::Ns(Ns::new(ns_name.clone()))));
        zone.insert(Record::new(
            ns_name,
            3600,
            RData::A(A::new(Ipv4Addr::new(203, 0, 113, (100 + i) as u8))),
        ));
    }
    zone
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Lookup;
    use dnswild_proto::RType;

    #[test]
    fn zone_answers_unique_labels() {
        let origin = Name::parse("ourtestdomain.nl").unwrap();
        let zone = test_domain_zone(&origin, 4);
        assert_eq!(zone.apex_ns().unwrap().len(), 4);
        let q = Name::parse("p99-round3.ourtestdomain.nl").unwrap();
        match zone.lookup(&q, RType::Txt) {
            Lookup::Answer(recs) => {
                assert_eq!(recs[0].ttl, PROBE_TTL);
                if let RData::Txt(t) = &recs[0].rdata {
                    assert_eq!(t.first_as_string(), SITE_PLACEHOLDER);
                } else {
                    panic!("not TXT");
                }
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn padded_zone_fattens_the_wildcard_answer() {
        let origin = Name::parse("x.nl").unwrap();
        let zone = padded_test_domain_zone(&origin, 1, 900);
        let q = Name::parse("p1.x.nl").unwrap();
        let Lookup::Answer(recs) = zone.lookup(&q, RType::Txt) else {
            panic!("expected answer")
        };
        let total: usize = recs
            .iter()
            .map(|r| match &r.rdata {
                RData::Txt(t) => t.strings().iter().map(Vec::len).sum::<usize>(),
                _ => 0,
            })
            .sum();
        assert!(total >= 900, "rdata only {total} bytes");
        assert!(
            recs.iter().any(|r| matches!(
                &r.rdata, RData::Txt(t) if t.first_as_string() == SITE_PLACEHOLDER
            )),
            "placeholder record must survive for branding"
        );
    }

    #[test]
    #[should_panic(expected = "at least one NS")]
    fn zero_ns_rejected() {
        let origin = Name::parse("x.nl").unwrap();
        test_domain_zone(&origin, 0);
    }

    #[test]
    fn attack_zone_nxdomains_below_the_anchor() {
        let origin = Name::parse("ourtestdomain.nl").unwrap();
        let zone = attack_test_domain_zone(&origin, 2, 8);
        // Water-torture names are NXDOMAIN, not wildcard-covered...
        let wt = Name::parse("wt3f9a.void.ourtestdomain.nl").unwrap();
        assert!(matches!(zone.lookup(&wt, RType::A), Lookup::NxDomain { .. }));
        // ...while the apex wildcard still answers legitimate probes.
        let probe = Name::parse("p1-r1.ourtestdomain.nl").unwrap();
        assert!(matches!(zone.lookup(&probe, RType::Txt), Lookup::Answer(_)));
        // The anchor node itself resolves normally.
        let anchor = Name::parse("void.ourtestdomain.nl").unwrap();
        assert!(matches!(zone.lookup(&anchor, RType::Txt), Lookup::Answer(_)));
    }

    #[test]
    fn attack_zone_referrals_carry_the_full_ns_and_glue_set() {
        let origin = Name::parse("ourtestdomain.nl").unwrap();
        let zone = attack_test_domain_zone(&origin, 2, 12);
        let q = Name::parse("v01.lab.ourtestdomain.nl").unwrap();
        let Lookup::Referral { ns, glue } = zone.lookup(&q, RType::A) else {
            panic!("expected a referral below the cut");
        };
        assert_eq!(ns.len(), 12, "every delegation NS rides the referral");
        assert_eq!(glue.len(), 12, "one A glue per NS");
    }
}
