//! Serializing a [`Zone`] back to master-file text — the inverse of
//! [`crate::parse_zone`], used for zone inspection, golden tests and
//! round-trip verification.

use dnswild_proto::{RData, RType, Record};

use crate::zone::Zone;

/// Renders the zone in master-file format: `$ORIGIN` and `$TTL`
/// directives, SOA first, then apex records, then everything else in a
/// deterministic (sorted) order with absolute names.
pub fn write_zone(zone: &Zone) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {}\n", zone.origin()));
    out.push_str("$TTL 3600\n");

    let mut records: Vec<&Record> = zone.iter().flat_map(|set| set.records().iter()).collect();
    records.sort_by_key(|r| {
        let type_rank = match r.rtype() {
            RType::Soa => 0,
            RType::Ns => 1,
            _ => 2,
        };
        let apex_rank = if &r.name == zone.origin() { 0 } else { 1 };
        (apex_rank, type_rank, r.name.to_string(), r.rtype().to_u16(), format!("{r}"))
    });

    for record in records {
        out.push_str(&render_record(record));
        out.push('\n');
    }
    out
}

fn render_record(r: &Record) -> String {
    let mut line = format!("{} {} {} {}", r.name, r.ttl, r.class, r.rtype());
    match &r.rdata {
        RData::A(a) => line.push_str(&format!(" {}", a.addr())),
        RData::Aaaa(a) => line.push_str(&format!(" {}", a.addr())),
        RData::Ns(n) => line.push_str(&format!(" {}", n.name())),
        RData::Cname(n) => line.push_str(&format!(" {}", n.name())),
        RData::Ptr(n) => line.push_str(&format!(" {}", n.name())),
        RData::Mx(m) => line.push_str(&format!(" {} {}", m.preference, m.exchange)),
        RData::Txt(t) => {
            for s in t.strings() {
                line.push_str(&format!(" \"{}\"", String::from_utf8_lossy(s)));
            }
        }
        RData::Soa(s) => line.push_str(&format!(
            " {} {} ( {} {} {} {} {} )",
            s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
        )),
        RData::Opt(_) => line.push_str(" ; OPT pseudo-records do not belong in zone files"),
        RData::Unknown { data, .. } => line.push_str(&format!(" \\# {}", data.len())),
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_zone;
    use crate::presets::test_domain_zone;
    use dnswild_proto::Name;

    #[test]
    fn preset_zone_round_trips() {
        let origin = Name::parse("ourtestdomain.nl").unwrap();
        let zone = test_domain_zone(&origin, 4);
        let text = write_zone(&zone);
        let back = parse_zone(&text, &origin).expect("serialized zone parses");
        assert_eq!(back.rrset_count(), zone.rrset_count());
        // Every original record must survive the round trip.
        for set in zone.iter() {
            let reparsed = back.get(set.name(), set.rtype()).expect("rrset present");
            assert_eq!(reparsed.len(), set.len(), "{} {}", set.name(), set.rtype());
        }
    }

    #[test]
    fn soa_comes_first() {
        let origin = Name::parse("x.nl").unwrap();
        let zone = test_domain_zone(&origin, 2);
        let text = write_zone(&zone);
        let first_record_line =
            text.lines().find(|l| !l.starts_with('$')).expect("has records");
        assert!(first_record_line.contains("SOA"), "got {first_record_line}");
    }

    #[test]
    fn output_is_deterministic() {
        let origin = Name::parse("x.nl").unwrap();
        let a = write_zone(&test_domain_zone(&origin, 3));
        let b = write_zone(&test_domain_zone(&origin, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn hand_written_zone_round_trips() {
        let origin = Name::parse("example.nl").unwrap();
        let text = r#"
$ORIGIN example.nl.
$TTL 300
@ IN SOA ns1 hostmaster ( 7 3600 600 86400 60 )
@ IN NS ns1
ns1 IN A 192.0.2.1
ns1 IN AAAA 2001:db8::1
www IN CNAME web
web 60 IN A 192.0.2.80
mail IN MX 10 mx1
mx1 IN A 192.0.2.25
txt IN TXT "hello world" "second"
"#;
        let zone = parse_zone(text, &origin).unwrap();
        let rendered = write_zone(&zone);
        let back = parse_zone(&rendered, &origin).unwrap();
        assert_eq!(back.rrset_count(), zone.rrset_count());
        for set in zone.iter() {
            let reparsed = back.get(set.name(), set.rtype()).expect("rrset survives");
            assert_eq!(reparsed.records(), set.records(), "{}", set.name());
        }
    }
}
