//! Resource-record sets: all records sharing an owner name and type.

use dnswild_proto::{Name, RData, RType, Record};

/// Key identifying an RRset within a zone.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RrKey {
    /// Owner name.
    pub name: Name,
    /// Record type.
    pub rtype: RType,
}

impl RrKey {
    /// Creates a key.
    pub fn new(name: Name, rtype: RType) -> Self {
        RrKey { name, rtype }
    }
}

/// An RRset: one or more records with the same owner name and type.
///
/// RFC 2181 §5.2 requires all members to share a TTL; we enforce this by
/// clamping every member to the TTL of the first record inserted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrSet {
    records: Vec<Record>,
}

impl RrSet {
    /// Creates an RRset from its first record.
    pub fn new(record: Record) -> Self {
        RrSet { records: vec![record] }
    }

    /// Adds a record; its TTL is clamped to the set's TTL.
    pub fn push(&mut self, mut record: Record) {
        record.ttl = self.ttl();
        // Exact duplicates (same RDATA) are idempotent, per RFC 2181 §5.
        if !self.records.iter().any(|r| r.rdata == record.rdata) {
            self.records.push(record);
        }
    }

    /// The set's shared TTL.
    pub fn ttl(&self) -> u32 {
        self.records[0].ttl
    }

    /// Owner name.
    pub fn name(&self) -> &Name {
        &self.records[0].name
    }

    /// Record type.
    pub fn rtype(&self) -> RType {
        self.records[0].rtype()
    }

    /// The member records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// RRsets are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates the RDATA payloads.
    pub fn rdatas(&self) -> impl Iterator<Item = &RData> {
        self.records.iter().map(|r| &r.rdata)
    }

    /// Clones the member records, substituting the owner name — used to
    /// synthesize wildcard answers at the query name (RFC 1034 §4.3.3).
    pub fn materialize_at(&self, owner: &Name) -> Vec<Record> {
        self.records
            .iter()
            .map(|r| Record::with_class(owner.clone(), r.class, r.ttl, r.rdata.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswild_proto::rdata::{Ns, Txt};

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ns_record(owner: &str, target: &str, ttl: u32) -> Record {
        Record::new(name(owner), ttl, RData::Ns(Ns::new(name(target))))
    }

    #[test]
    fn ttl_clamped_to_first() {
        let mut set = RrSet::new(ns_record("example.nl", "ns1.example.nl", 3600));
        set.push(ns_record("example.nl", "ns2.example.nl", 60));
        assert_eq!(set.ttl(), 3600);
        assert!(set.records().iter().all(|r| r.ttl == 3600));
    }

    #[test]
    fn duplicate_rdata_not_added() {
        let mut set = RrSet::new(ns_record("example.nl", "ns1.example.nl", 300));
        set.push(ns_record("example.nl", "NS1.EXAMPLE.NL", 300));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn materialize_at_rewrites_owner() {
        let set = RrSet::new(Record::new(
            name("*.test.nl"),
            5,
            RData::Txt(Txt::from_string("@SITE@").unwrap()),
        ));
        let out = set.materialize_at(&name("q123.test.nl"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, name("q123.test.nl"));
        assert_eq!(out[0].ttl, 5);
    }

    #[test]
    fn key_equality_is_case_insensitive() {
        assert_eq!(
            RrKey::new(name("A.b"), RType::Txt),
            RrKey::new(name("a.B"), RType::Txt)
        );
    }
}
