//! A master-file (zone file) parser covering the subset this system
//! serves: `$ORIGIN`, `$TTL`, comments, relative and absolute names, `@`,
//! and the record types A, AAAA, NS, SOA, CNAME, PTR, MX, TXT.
//!
//! Multi-line SOA records using parentheses are supported, since that is
//! how practically every real zone file writes its SOA.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use dnswild_proto::rdata::{Aaaa, Cname, Mx, Ns, Ptr, Soa, Txt, A};
use dnswild_proto::{Name, RData, Record};

use crate::zone::Zone;

/// Errors raised while parsing a zone file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses zone-file text into a [`Zone`].
///
/// `default_origin` is used until a `$ORIGIN` directive appears; pass the
/// zone's apex.
pub fn parse_zone(text: &str, default_origin: &Name) -> Result<Zone, ParseError> {
    let mut origin = default_origin.clone();
    let mut default_ttl: u32 = 3600;
    let mut last_owner: Option<Name> = None;
    let mut zone = Zone::new(default_origin.clone());

    for (idx, raw_line) in join_parentheses(text).into_iter() {
        let line = strip_comment(&raw_line);
        if line.trim().is_empty() {
            continue;
        }
        let err = |message: String| ParseError { line: idx, message };

        if let Some(rest) = line.trim_start().strip_prefix("$ORIGIN") {
            origin = parse_name(rest.trim(), &origin).map_err(&err)?;
            continue;
        }
        if let Some(rest) = line.trim_start().strip_prefix("$TTL") {
            default_ttl =
                rest.trim().parse().map_err(|_| err(format!("bad $TTL {:?}", rest.trim())))?;
            continue;
        }

        let starts_with_space = line.starts_with([' ', '\t']);
        let tokens = tokenize(&line);
        if tokens.is_empty() {
            continue;
        }
        let mut pos = 0;

        // Owner: inherited when the line starts with whitespace.
        let owner = if starts_with_space {
            last_owner.clone().ok_or_else(|| err("no previous owner to inherit".into()))?
        } else {
            let t = &tokens[pos];
            pos += 1;
            parse_name(t, &origin).map_err(&err)?
        };
        last_owner = Some(owner.clone());

        // Optional TTL and/or class, in either order.
        let mut ttl = default_ttl;
        let mut saw_type = None;
        while pos < tokens.len() {
            let t = tokens[pos].as_str();
            if let Ok(v) = t.parse::<u32>() {
                ttl = v;
                pos += 1;
            } else if t.eq_ignore_ascii_case("IN") || t.eq_ignore_ascii_case("CH") {
                pos += 1; // class accepted and ignored (IN assumed)
            } else {
                saw_type = Some(t.to_string());
                pos += 1;
                break;
            }
        }
        let rtype = saw_type.ok_or_else(|| err("missing record type".into()))?;
        let rest = &tokens[pos..];

        let rdata = parse_rdata(&rtype, rest, &origin).map_err(err)?;
        zone.insert(Record::new(owner, ttl, rdata));
    }
    Ok(zone)
}

/// Joins lines between `(` and `)` into one logical line, preserving the
/// starting line number for errors.
fn join_parentheses(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut pending: Option<(usize, String, i32)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let stripped = strip_comment(raw);
        let opens = stripped.matches('(').count() as i32;
        let closes = stripped.matches(')').count() as i32;
        match pending.take() {
            None => {
                if opens > closes {
                    pending = Some((line_no, stripped.replace('(', " "), opens - closes));
                } else {
                    out.push((line_no, stripped.replace(['(', ')'], " ")));
                }
            }
            Some((start, mut acc, depth)) => {
                acc.push(' ');
                acc.push_str(&stripped.replace(['(', ')'], " "));
                let depth = depth + opens - closes;
                if depth <= 0 {
                    out.push((start, acc));
                } else {
                    pending = Some((start, acc, depth));
                }
            }
        }
    }
    if let Some((start, acc, _)) = pending {
        out.push((start, acc)); // unbalanced: surface whatever we got
    }
    out
}

fn strip_comment(line: &str) -> String {
    // A ';' starts a comment unless inside a quoted string.
    let mut out = String::with_capacity(line.len());
    let mut in_quote = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                out.push(c);
            }
            ';' if !in_quote => break,
            _ => out.push(c),
        }
    }
    out
}

fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_quote = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                if !in_quote {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c if c.is_whitespace() && !in_quote => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

fn parse_name(token: &str, origin: &Name) -> Result<Name, String> {
    if token == "@" {
        return Ok(origin.clone());
    }
    if token.ends_with('.') {
        return Name::parse(token).map_err(|e| e.to_string());
    }
    // Relative: append the origin.
    let relative = Name::parse(&format!("{token}.")).map_err(|e| e.to_string())?;
    let labels = relative
        .labels()
        .iter()
        .map(|l| l.as_bytes().to_vec())
        .chain(origin.labels().iter().map(|l| l.as_bytes().to_vec()));
    Name::from_labels(labels).map_err(|e| e.to_string())
}

fn parse_rdata(rtype: &str, args: &[String], origin: &Name) -> Result<RData, String> {
    let need = |n: usize| -> Result<(), String> {
        if args.len() < n {
            Err(format!("{rtype} needs {n} fields, got {}", args.len()))
        } else {
            Ok(())
        }
    };
    match rtype.to_ascii_uppercase().as_str() {
        "A" => {
            need(1)?;
            let addr: Ipv4Addr = args[0].parse().map_err(|_| format!("bad A {:?}", args[0]))?;
            Ok(RData::A(A::new(addr)))
        }
        "AAAA" => {
            need(1)?;
            let addr: Ipv6Addr =
                args[0].parse().map_err(|_| format!("bad AAAA {:?}", args[0]))?;
            Ok(RData::Aaaa(Aaaa::new(addr)))
        }
        "NS" => {
            need(1)?;
            Ok(RData::Ns(Ns::new(parse_name(&args[0], origin)?)))
        }
        "CNAME" => {
            need(1)?;
            Ok(RData::Cname(Cname::new(parse_name(&args[0], origin)?)))
        }
        "PTR" => {
            need(1)?;
            Ok(RData::Ptr(Ptr::new(parse_name(&args[0], origin)?)))
        }
        "MX" => {
            need(2)?;
            let pref: u16 =
                args[0].parse().map_err(|_| format!("bad MX preference {:?}", args[0]))?;
            Ok(RData::Mx(Mx::new(pref, parse_name(&args[1], origin)?)))
        }
        "TXT" => {
            need(1)?;
            Txt::new(args.iter().map(|s| s.as_bytes().to_vec())).map(RData::Txt).map_err(|e| e.to_string())
        }
        "SOA" => {
            need(7)?;
            let nums: Vec<u32> = args[2..7]
                .iter()
                .map(|s| s.parse::<u32>().map_err(|_| format!("bad SOA number {s:?}")))
                .collect::<Result<_, _>>()?;
            Ok(RData::Soa(Soa::new(
                parse_name(&args[0], origin)?,
                parse_name(&args[1], origin)?,
                nums[0],
                nums[1],
                nums[2],
                nums[3],
                nums[4],
            )))
        }
        other => Err(format!("unsupported record type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Lookup;
    use dnswild_proto::RType;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    const ZONE_TEXT: &str = r#"
$ORIGIN ourtestdomain.nl.
$TTL 3600
@   IN  SOA ns1 hostmaster (
        2017041201 ; serial
        7200       ; refresh
        3600       ; retry
        604800     ; expire
        300 )      ; minimum
@       IN  NS  ns1
@       IN  NS  ns2.ourtestdomain.nl.
ns1     IN  A   203.0.113.1
ns2     IN  A   203.0.113.2
ns1     IN  AAAA 2001:db8::1
*.probe 5 IN TXT "@SITE@"
www     IN  CNAME web
web     IN  A   203.0.113.10
mail    IN  MX  10 mx1
mx1     IN  A   203.0.113.11
txt2    IN  TXT "part one" "part two"
"#;

    #[test]
    fn parses_full_zone() {
        let z = parse_zone(ZONE_TEXT, &name("ourtestdomain.nl")).unwrap();
        assert!(z.soa().is_some());
        assert_eq!(z.apex_ns().unwrap().len(), 2);
        assert_eq!(
            z.soa().unwrap().ttl,
            3600,
            "SOA gets the $TTL default"
        );
    }

    #[test]
    fn soa_fields_parsed() {
        let z = parse_zone(ZONE_TEXT, &name("ourtestdomain.nl")).unwrap();
        let soa = z.soa().unwrap();
        if let RData::Soa(s) = &soa.rdata {
            assert_eq!(s.serial, 2017041201);
            assert_eq!(s.minimum, 300);
            assert_eq!(s.mname, name("ns1.ourtestdomain.nl"));
        } else {
            panic!("not SOA");
        }
    }

    #[test]
    fn relative_and_absolute_names() {
        let z = parse_zone(ZONE_TEXT, &name("ourtestdomain.nl")).unwrap();
        assert!(z.get(&name("ns1.ourtestdomain.nl"), RType::A).is_some());
        assert!(z.get(&name("ns2.ourtestdomain.nl"), RType::A).is_some());
        assert!(z.get(&name("ns1.ourtestdomain.nl"), RType::Aaaa).is_some());
    }

    #[test]
    fn wildcard_with_explicit_ttl() {
        let z = parse_zone(ZONE_TEXT, &name("ourtestdomain.nl")).unwrap();
        match z.lookup(&name("xyz.probe.ourtestdomain.nl"), RType::Txt) {
            Lookup::Answer(recs) => assert_eq!(recs[0].ttl, 5),
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn quoted_txt_with_spaces_and_multiple_strings() {
        let z = parse_zone(ZONE_TEXT, &name("ourtestdomain.nl")).unwrap();
        let set = z.get(&name("txt2.ourtestdomain.nl"), RType::Txt).unwrap();
        if let RData::Txt(t) = &set.records()[0].rdata {
            assert_eq!(t.strings().len(), 2);
            assert_eq!(t.strings()[0], b"part one");
        } else {
            panic!("not TXT");
        }
    }

    #[test]
    fn mx_parsed() {
        let z = parse_zone(ZONE_TEXT, &name("ourtestdomain.nl")).unwrap();
        let set = z.get(&name("mail.ourtestdomain.nl"), RType::Mx).unwrap();
        if let RData::Mx(m) = &set.records()[0].rdata {
            assert_eq!(m.preference, 10);
            assert_eq!(m.exchange, name("mx1.ourtestdomain.nl"));
        } else {
            panic!("not MX");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let z =
            parse_zone("; just a comment\n\n@ IN SOA ns h 1 2 3 4 5\n", &name("x.nl")).unwrap();
        assert!(z.soa().is_some());
    }

    #[test]
    fn error_reports_line() {
        let bad = "@ IN SOA ns h 1 2 3 4 5\njunk IN BOGUS data\n";
        let e = parse_zone(bad, &name("x.nl")).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("BOGUS"));
    }

    #[test]
    fn missing_type_is_error() {
        let e = parse_zone("@ IN SOA ns h 1 2 3 4 5\nhost 300 IN\n", &name("x.nl")).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn owner_inheritance() {
        let text = "@ IN SOA ns h 1 2 3 4 5\nhost IN A 1.2.3.4\n     IN TXT \"x\"\n";
        let z = parse_zone(text, &name("x.nl")).unwrap();
        assert!(z.get(&name("host.x.nl"), RType::Txt).is_some());
    }
}
