//! The zone store and authoritative lookup algorithm (RFC 1034 §4.3.2,
//! minus DNSSEC), including wildcard synthesis — which the reproduced
//! measurement depends on: every probe queries a *unique* label under the
//! test domain, answered by a wildcard TXT record.

use std::collections::{HashMap, HashSet};

use dnswild_proto::{Name, RData, RType, Record};

use crate::rrset::{RrKey, RrSet};

/// Result of an authoritative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The answer RRset (owner name already rewritten for wildcards),
    /// possibly preceded by CNAME records that led to it.
    Answer(Vec<Record>),
    /// The name exists but has no records of the requested type. The SOA
    /// record for negative caching is included.
    NoData {
        /// Zone SOA for the authority section.
        soa: Record,
    },
    /// The name does not exist. The SOA record is included.
    NxDomain {
        /// Zone SOA for the authority section.
        soa: Record,
    },
    /// The name is delegated to a child zone: NS records plus any glue.
    Referral {
        /// The delegation NS RRset.
        ns: Vec<Record>,
        /// Glue address records for in-zone name servers.
        glue: Vec<Record>,
    },
    /// The name is not within this zone at all.
    OutOfZone,
}

/// An authoritative zone: an origin plus its RRsets.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    rrsets: HashMap<RrKey, RrSet>,
    /// Every name that "exists" (has records or descendants with records);
    /// needed to distinguish NODATA from NXDOMAIN at empty non-terminals.
    names: HashSet<Name>,
}

impl Zone {
    /// Creates an empty zone. Call [`Zone::insert`] with at least an SOA
    /// before serving it.
    pub fn new(origin: Name) -> Self {
        Zone { origin, rrsets: HashMap::new(), names: HashSet::new() }
    }

    /// The zone origin (apex name).
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// Inserts a record. Panics if the owner is outside the zone —
    /// building a zone with foreign names is a programming error.
    pub fn insert(&mut self, record: Record) {
        assert!(
            record.name.is_subdomain_of(&self.origin),
            "record owner {} outside zone {}",
            record.name,
            self.origin
        );
        // Register the owner and all ancestors up to the origin so empty
        // non-terminals resolve to NODATA, not NXDOMAIN.
        let mut n = record.name.clone();
        loop {
            self.names.insert(n.clone());
            if n == self.origin {
                break;
            }
            n = n.parent().expect("walked past the root while inside the zone");
        }
        let key = RrKey::new(record.name.clone(), record.rtype());
        match self.rrsets.get_mut(&key) {
            Some(set) => set.push(record),
            None => {
                self.rrsets.insert(key, RrSet::new(record));
            }
        }
    }

    /// The zone's SOA record, if present.
    pub fn soa(&self) -> Option<&Record> {
        self.rrsets
            .get(&RrKey::new(self.origin.clone(), RType::Soa))
            .map(|s| &s.records()[0])
    }

    /// The apex NS RRset, if present.
    pub fn apex_ns(&self) -> Option<&RrSet> {
        self.rrsets.get(&RrKey::new(self.origin.clone(), RType::Ns))
    }

    /// Direct RRset fetch (no wildcard or CNAME processing).
    pub fn get(&self, name: &Name, rtype: RType) -> Option<&RrSet> {
        self.rrsets.get(&RrKey::new(name.clone(), rtype))
    }

    /// Number of RRsets in the zone.
    pub fn rrset_count(&self) -> usize {
        self.rrsets.len()
    }

    /// Iterates all RRsets.
    pub fn iter(&self) -> impl Iterator<Item = &RrSet> {
        self.rrsets.values()
    }

    /// Authoritative lookup per RFC 1034 §4.3.2.
    pub fn lookup(&self, qname: &Name, qtype: RType) -> Lookup {
        if !qname.is_subdomain_of(&self.origin) {
            return Lookup::OutOfZone;
        }
        let soa = match self.soa() {
            Some(s) => s.clone(),
            None => return Lookup::OutOfZone, // not a servable zone
        };

        // Check for a delegation strictly between the apex and the qname.
        if let Some(referral) = self.find_delegation(qname) {
            return referral;
        }

        if self.names.contains(qname) {
            // Name exists: exact type, CNAME, or NODATA.
            if let Some(set) = self.get(qname, qtype) {
                return Lookup::Answer(set.records().to_vec());
            }
            if qtype != RType::Cname {
                if let Some(cname_set) = self.get(qname, RType::Cname) {
                    return self.chase_cname(cname_set.records().to_vec(), qtype, soa);
                }
            }
            return Lookup::NoData { soa };
        }

        // Wildcard synthesis: find `*` at the closest encloser.
        let mut encloser = qname.parent();
        while let Some(ancestor) = encloser {
            if !ancestor.is_subdomain_of(&self.origin) {
                break;
            }
            if self.names.contains(&ancestor) {
                if let Ok(wild) = ancestor.prepend("*") {
                    if let Some(set) = self.get(&wild, qtype) {
                        return Lookup::Answer(set.materialize_at(qname));
                    }
                    if self.names.contains(&wild) {
                        if let Some(cname_set) = self.get(&wild, RType::Cname) {
                            return self.chase_cname(
                                cname_set.materialize_at(qname),
                                qtype,
                                soa,
                            );
                        }
                        return Lookup::NoData { soa };
                    }
                }
                // Closest encloser found but no wildcard: the name is absent.
                break;
            }
            encloser = ancestor.parent();
        }
        Lookup::NxDomain { soa }
    }

    /// Finds a delegation point between the apex (exclusive) and `qname`
    /// (inclusive), returning a referral if one exists.
    fn find_delegation(&self, qname: &Name) -> Option<Lookup> {
        // Walk cut candidates from just below the apex down to qname.
        let qlabels = qname.label_count();
        let olabels = self.origin.label_count();
        for depth in (olabels + 1)..=qlabels {
            let skip = qlabels - depth;
            let candidate = Name::from_labels(
                qname.labels()[skip..].iter().map(|l| l.as_bytes().to_vec()),
            )
            .expect("suffix of a valid name is valid");
            if candidate == self.origin {
                continue;
            }
            if let Some(ns_set) = self.get(&candidate, RType::Ns) {
                let ns = ns_set.records().to_vec();
                let mut glue = Vec::new();
                for rec in &ns {
                    if let RData::Ns(target) = &rec.rdata {
                        for t in [RType::A, RType::Aaaa] {
                            if let Some(set) = self.get(target.name(), t) {
                                glue.extend(set.records().iter().cloned());
                            }
                        }
                    }
                }
                return Some(Lookup::Referral { ns, glue });
            }
        }
        None
    }

    /// Follows an in-zone CNAME chain (bounded to avoid loops), appending
    /// the target RRset when it resolves inside the zone.
    fn chase_cname(&self, mut chain: Vec<Record>, qtype: RType, soa: Record) -> Lookup {
        const MAX_CHAIN: usize = 8;
        let mut hops = 0;
        loop {
            let last = chain.last().expect("chain starts non-empty");
            let RData::Cname(target) = &last.rdata else {
                return Lookup::Answer(chain);
            };
            let target = target.name().clone();
            hops += 1;
            if hops > MAX_CHAIN || !target.is_subdomain_of(&self.origin) {
                // Out-of-zone or too-long chains: return what we have; the
                // recursive restarts resolution at the CNAME target.
                return Lookup::Answer(chain);
            }
            if let Some(set) = self.get(&target, qtype) {
                chain.extend(set.records().iter().cloned());
                return Lookup::Answer(chain);
            }
            if let Some(next) = self.get(&target, RType::Cname) {
                chain.extend(next.records().iter().cloned());
                continue;
            }
            if self.names.contains(&target) {
                return Lookup::Answer(chain);
            }
            let _ = soa; // chain dead-ends: still an answer with the CNAMEs
            return Lookup::Answer(chain);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswild_proto::rdata::{Cname, Ns, Soa, Txt, A};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn test_zone() -> Zone {
        let origin = name("ourtestdomain.nl");
        let mut z = Zone::new(origin.clone());
        z.insert(Record::new(
            origin.clone(),
            3600,
            RData::Soa(Soa::new(
                name("ns1.ourtestdomain.nl"),
                name("hostmaster.ourtestdomain.nl"),
                2017,
                7200,
                3600,
                604800,
                300,
            )),
        ));
        z.insert(Record::new(origin.clone(), 3600, RData::Ns(Ns::new(name("ns1.ourtestdomain.nl")))));
        z.insert(Record::new(origin.clone(), 3600, RData::Ns(Ns::new(name("ns2.ourtestdomain.nl")))));
        z.insert(Record::new(
            name("ns1.ourtestdomain.nl"),
            3600,
            RData::A(A::new(Ipv4Addr::new(203, 0, 113, 1))),
        ));
        z.insert(Record::new(
            name("ns2.ourtestdomain.nl"),
            3600,
            RData::A(A::new(Ipv4Addr::new(203, 0, 113, 2))),
        ));
        // The measurement wildcard: any unique label answers with TXT.
        z.insert(Record::new(
            name("*.probe.ourtestdomain.nl"),
            5,
            RData::Txt(Txt::from_string("@SITE@").unwrap()),
        ));
        z.insert(Record::new(
            name("www.ourtestdomain.nl"),
            300,
            RData::Cname(Cname::new(name("web.ourtestdomain.nl"))),
        ));
        z.insert(Record::new(
            name("web.ourtestdomain.nl"),
            300,
            RData::A(A::new(Ipv4Addr::new(203, 0, 113, 10))),
        ));
        // A delegation.
        z.insert(Record::new(
            name("child.ourtestdomain.nl"),
            3600,
            RData::Ns(Ns::new(name("ns.child.ourtestdomain.nl"))),
        ));
        z.insert(Record::new(
            name("ns.child.ourtestdomain.nl"),
            3600,
            RData::A(A::new(Ipv4Addr::new(203, 0, 113, 20))),
        ));
        z
    }

    #[test]
    fn exact_match() {
        let z = test_zone();
        match z.lookup(&name("web.ourtestdomain.nl"), RType::A) {
            Lookup::Answer(recs) => {
                assert_eq!(recs.len(), 1);
                assert_eq!(recs[0].rtype(), RType::A);
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn wildcard_synthesis_unique_labels() {
        let z = test_zone();
        for label in ["q1", "q2", "probe-417-20170412"] {
            let qname = name(&format!("{label}.probe.ourtestdomain.nl"));
            match z.lookup(&qname, RType::Txt) {
                Lookup::Answer(recs) => {
                    assert_eq!(recs[0].name, qname, "owner rewritten to qname");
                    assert_eq!(recs[0].ttl, 5, "paper's anti-caching TTL");
                }
                other => panic!("expected wildcard answer, got {other:?}"),
            }
        }
    }

    #[test]
    fn wildcard_does_not_apply_to_existing_name() {
        let z = test_zone();
        // `probe` itself exists (as an empty non-terminal); no wildcard.
        match z.lookup(&name("probe.ourtestdomain.nl"), RType::Txt) {
            Lookup::NoData { .. } => {}
            other => panic!("expected NODATA at empty non-terminal, got {other:?}"),
        }
    }

    #[test]
    fn nxdomain_when_no_wildcard() {
        let z = test_zone();
        match z.lookup(&name("nosuch.ourtestdomain.nl"), RType::A) {
            Lookup::NxDomain { soa } => assert_eq!(soa.rtype(), RType::Soa),
            other => panic!("expected NXDOMAIN, got {other:?}"),
        }
    }

    #[test]
    fn nodata_on_wrong_type() {
        let z = test_zone();
        match z.lookup(&name("web.ourtestdomain.nl"), RType::Txt) {
            Lookup::NoData { .. } => {}
            other => panic!("expected NODATA, got {other:?}"),
        }
    }

    #[test]
    fn cname_chased_in_zone() {
        let z = test_zone();
        match z.lookup(&name("www.ourtestdomain.nl"), RType::A) {
            Lookup::Answer(recs) => {
                assert_eq!(recs.len(), 2);
                assert_eq!(recs[0].rtype(), RType::Cname);
                assert_eq!(recs[1].rtype(), RType::A);
            }
            other => panic!("expected CNAME chain, got {other:?}"),
        }
    }

    #[test]
    fn cname_query_returns_cname_itself() {
        let z = test_zone();
        match z.lookup(&name("www.ourtestdomain.nl"), RType::Cname) {
            Lookup::Answer(recs) => {
                assert_eq!(recs.len(), 1);
                assert_eq!(recs[0].rtype(), RType::Cname);
            }
            other => panic!("expected CNAME answer, got {other:?}"),
        }
    }

    #[test]
    fn referral_below_delegation() {
        let z = test_zone();
        match z.lookup(&name("deep.child.ourtestdomain.nl"), RType::A) {
            Lookup::Referral { ns, glue } => {
                assert_eq!(ns.len(), 1);
                assert_eq!(glue.len(), 1, "in-zone glue present");
            }
            other => panic!("expected referral, got {other:?}"),
        }
    }

    #[test]
    fn out_of_zone() {
        let z = test_zone();
        assert_eq!(z.lookup(&name("example.com"), RType::A), Lookup::OutOfZone);
    }

    #[test]
    fn apex_queries() {
        let z = test_zone();
        match z.lookup(&name("ourtestdomain.nl"), RType::Ns) {
            Lookup::Answer(recs) => assert_eq!(recs.len(), 2),
            other => panic!("expected apex NS, got {other:?}"),
        }
        assert!(z.soa().is_some());
        assert_eq!(z.apex_ns().unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn insert_foreign_name_panics() {
        let mut z = Zone::new(name("ourtestdomain.nl"));
        z.insert(Record::new(
            name("other.example"),
            60,
            RData::A(A::new(Ipv4Addr::new(1, 2, 3, 4))),
        ));
    }
}
