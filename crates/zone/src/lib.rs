//! # dnswild-zone
//!
//! Authoritative zone data for the *Recursives in the Wild* reproduction:
//! RRsets, the RFC 1034 lookup algorithm (exact match, CNAME chains,
//! delegations, wildcard synthesis, NODATA/NXDOMAIN), a master-file
//! parser, and preset zones for the measurement experiments.
//!
//! Wildcards are first-class here because the reproduced measurement
//! methodology relies on them: every probe queries a unique label under
//! the test domain (defeating record caches), and a wildcard TXT record
//! answers all of them.
//!
//! ```
//! use dnswild_proto::{Name, RType};
//! use dnswild_zone::{presets, Lookup};
//!
//! let origin = Name::parse("ourtestdomain.nl").unwrap();
//! let zone = presets::test_domain_zone(&origin, 2);
//! let q = Name::parse("probe-17-round-1.ourtestdomain.nl").unwrap();
//! assert!(matches!(zone.lookup(&q, RType::Txt), Lookup::Answer(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parser;
pub mod presets;
mod rrset;
mod serializer;
mod zone;

pub use parser::{parse_zone, ParseError};
pub use rrset::{RrKey, RrSet};
pub use serializer::write_zone;
pub use zone::{Lookup, Zone};
