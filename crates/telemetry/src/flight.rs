//! The flight recorder: a bounded in-memory store of recent query
//! journeys, kept by the collector's drain thread so that when a run
//! goes sideways the *interesting* per-query timelines are still in
//! memory — no trace file required.
//!
//! Retention policy, in priority order:
//!
//! 1. **every failed journey** (a non-prefetch, non-attack client
//!    attempt that timed out), up to a hard safety cap;
//! 2. **the slowest K** journeys seen so far, by worst client RTT;
//! 3. **the last N** journeys, as a recency ring.
//!
//! Everything else is evicted and counted in `dropped`. Each retained
//! journey keeps its hops (capped) *including the 48-byte wire image*
//! of every event, so a JSONL dump is a lossless record of what the
//! telemetry plane saw for that query.

use std::collections::HashMap;
use std::io::{self, Write};

use crate::event::{EventKind, TraceEvent, FLAG_ATTACK, FLAG_PREFETCH, FLAG_TIMEOUT};

/// Bounds for the recorder. The defaults keep the whole structure under
/// ~2 MB even with every slot full.
#[derive(Debug, Clone, Copy)]
pub struct FlightConfig {
    /// Size of the recency ring (journeys retained just for being new).
    pub last_n: usize,
    /// How many of the slowest journeys are always retained.
    pub slowest_k: usize,
    /// Safety cap on failed-journey retention — a run that fails
    /// *everything* must not grow without bound.
    pub failed_cap: usize,
    /// Per-journey hop cap; further hops are counted, not stored.
    pub max_hops: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig { last_n: 256, slowest_k: 16, failed_cap: 4096, max_hops: 64 }
    }
}

/// One retained journey: its hops in drain order.
///
/// The rank inputs (`worst_rtt`, `failed`) are cached incrementally as
/// hops arrive rather than recomputed by scanning `hops`: `observe`
/// runs on the collector's drain thread for *every* drained event, and
/// on small hosts that thread competes with the serving shards for
/// cores — the recorder must stay O(1) per event.
#[derive(Debug, Clone)]
pub struct JourneyLog {
    pub journey: u64,
    pub hops: Vec<TraceEvent>,
    /// Hops beyond [`FlightConfig::max_hops`], counted but not stored.
    pub hops_dropped: u64,
    worst_rtt: u64,
    has_failed: bool,
}

impl JourneyLog {
    /// Worst client-side RTT across the journey's stored attempts — the
    /// value the slowest-K policy ranks on.
    pub fn worst_rtt_ns(&self) -> u64 {
        self.worst_rtt
    }

    /// Whether a foreground client attempt timed out: the signal that
    /// pins this journey in the recorder regardless of recency.
    pub fn failed(&self) -> bool {
        self.has_failed
    }

    fn absorb(&mut self, ev: &TraceEvent) {
        if ev.kind == EventKind::ClientQuery {
            self.worst_rtt = self.worst_rtt.max(u64::from(ev.latency_ns));
            if ev.flags & FLAG_TIMEOUT != 0 && ev.flags & (FLAG_PREFETCH | FLAG_ATTACK) == 0 {
                self.has_failed = true;
            }
        }
    }
}

/// Live counters, mirrored into the collector snapshot after each sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Journeys ever admitted to the recorder.
    pub recorded: u64,
    /// Journeys evicted without earning a pinned slot.
    pub dropped: u64,
    /// Worst client RTT currently retained (exemplar gauge).
    pub slowest_ns: u64,
}

pub struct FlightRecorder {
    cfg: FlightConfig,
    journeys: HashMap<u64, JourneyLog>,
    /// Recency ring: journey ids in admission order. Ids may linger
    /// here after promotion to a pinned set; eviction skips those.
    recent: std::collections::VecDeque<u64>,
    /// Journey ids pinned as slowest-K (unordered; ranked on demand).
    slow: Vec<u64>,
    /// Journey ids pinned as failed.
    failed: Vec<u64>,
    stats: FlightStats,
}

impl FlightRecorder {
    pub fn new(cfg: FlightConfig) -> Self {
        FlightRecorder {
            cfg,
            journeys: HashMap::new(),
            recent: std::collections::VecDeque::new(),
            slow: Vec::new(),
            failed: Vec::new(),
            stats: FlightStats::default(),
        }
    }

    pub fn stats(&self) -> FlightStats {
        self.stats
    }

    pub fn retained(&self) -> usize {
        self.journeys.len()
    }

    /// Feed one drained event. Events without a journey id are not part
    /// of any query's story and are skipped.
    pub fn observe(&mut self, ev: &TraceEvent) {
        if ev.journey == 0 {
            return;
        }
        let recorded_before = self.stats.recorded;
        let log = self.journeys.entry(ev.journey).or_insert_with(|| {
            self.stats.recorded += 1;
            self.recent.push_back(ev.journey);
            JourneyLog {
                journey: ev.journey,
                hops: Vec::new(),
                hops_dropped: 0,
                worst_rtt: 0,
                has_failed: false,
            }
        });
        if log.hops.len() < self.cfg.max_hops {
            log.absorb(ev);
            log.hops.push(*ev);
        } else {
            log.hops_dropped += 1;
        }
        self.stats.slowest_ns = self.stats.slowest_ns.max(log.worst_rtt);
        // Only a newly admitted journey can grow the recency ring.
        if self.stats.recorded != recorded_before {
            self.enforce_bounds();
        }
    }

    /// Evict from the recency ring until it fits, promoting journeys
    /// that earned a pinned slot on their way out.
    fn enforce_bounds(&mut self) {
        while self.recent.len() > self.cfg.last_n {
            let Some(id) = self.recent.pop_front() else { break };
            if self.slow.contains(&id) || self.failed.contains(&id) {
                continue; // already pinned, just drop the recency entry
            }
            let Some(log) = self.journeys.get(&id) else { continue };
            if log.failed() && self.failed.len() < self.cfg.failed_cap {
                self.failed.push(id);
                continue;
            }
            let rtt = log.worst_rtt_ns();
            if self.slow.len() < self.cfg.slowest_k {
                self.slow.push(id);
                continue;
            }
            // Full slowest set: displace its current minimum if this
            // journey is slower, then evict the displaced one.
            let (min_idx, min_rtt) = self
                .slow
                .iter()
                .enumerate()
                .map(|(i, sid)| {
                    (i, self.journeys.get(sid).map(|l| l.worst_rtt_ns()).unwrap_or(0))
                })
                .min_by_key(|&(_, r)| r)
                .unwrap();
            if rtt > min_rtt {
                let displaced = std::mem::replace(&mut self.slow[min_idx], id);
                self.evict(displaced);
            } else {
                self.evict(id);
            }
        }
    }

    fn evict(&mut self, id: u64) {
        // A displaced slow journey may still deserve its failed pin.
        if let Some(log) = self.journeys.get(&id) {
            if log.failed() && self.failed.len() < self.cfg.failed_cap {
                self.failed.push(id);
                return;
            }
        }
        if self.journeys.remove(&id).is_some() {
            self.stats.dropped += 1;
        }
    }

    /// Every retained journey: failed pins first, then slowest (worst
    /// RTT first), then the recency ring oldest-first. Each journey
    /// appears once.
    pub fn journeys(&self) -> Vec<&JourneyLog> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(self.journeys.len());
        let mut slow_sorted = self.slow.clone();
        slow_sorted.sort_by_key(|id| {
            std::cmp::Reverse(self.journeys.get(id).map(|l| l.worst_rtt_ns()).unwrap_or(0))
        });
        for id in self.failed.iter().chain(slow_sorted.iter()).chain(self.recent.iter()) {
            if let Some(log) = self.journeys.get(id) {
                if seen.insert(*id) {
                    out.push(log);
                }
            }
        }
        out
    }

    /// Dump every retained journey as one JSON object per line. Each
    /// hop carries the hex wire image of its 48-byte DWTRACE2 encoding,
    /// so the dump can be re-ingested losslessly.
    pub fn dump_jsonl<W: Write>(&self, mut out: W) -> io::Result<()> {
        for log in self.journeys() {
            write!(
                out,
                "{{\"journey\":\"{:016x}\",\"failed\":{},\"worst_rtt_ns\":{},\"hops_dropped\":{},\"hops\":[",
                log.journey,
                log.failed(),
                log.worst_rtt_ns(),
                log.hops_dropped
            )?;
            for (i, h) in log.hops.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",")?;
                }
                let mut wire = String::with_capacity(96);
                for w in h.encode_words() {
                    for b in w.to_le_bytes() {
                        wire.push_str(&format!("{b:02x}"));
                    }
                }
                write!(
                    out,
                    "{{\"ts_ns\":{},\"kind\":\"{}\",\"flags\":{},\"rcode\":{},\"dns_id\":{},\"auth_id\":{},\"latency_ns\":{},\"bytes_in\":{},\"bytes_out\":{},\"wire\":\"{}\"}}",
                    h.ts_ns,
                    h.kind.label(),
                    h.flags,
                    h.rcode,
                    h.dns_id,
                    h.auth_id,
                    h.latency_ns,
                    h.bytes_in,
                    h.bytes_out,
                    wire
                )?;
            }
            out.write_all(b"]}\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FLAG_RESPONSE;

    fn hop(journey: u64, kind: EventKind, latency_ns: u32, flags: u16) -> TraceEvent {
        let mut e = TraceEvent::new(kind);
        e.journey = journey;
        e.latency_ns = latency_ns;
        e.flags = flags;
        e
    }

    fn tiny() -> FlightRecorder {
        FlightRecorder::new(FlightConfig { last_n: 4, slowest_k: 2, failed_cap: 8, max_hops: 4 })
    }

    #[test]
    fn recency_ring_evicts_oldest_plain_journey() {
        let mut fr = tiny();
        for j in 1..=10u64 {
            fr.observe(&hop(j, EventKind::ClientQuery, 100, FLAG_RESPONSE));
        }
        let stats = fr.stats();
        assert_eq!(stats.recorded, 10);
        // 4 recent + 2 promoted into the (initially empty) slow set.
        assert_eq!(fr.retained(), 6);
        assert_eq!(stats.dropped, 4);
    }

    #[test]
    fn slowest_journeys_survive_eviction() {
        let mut fr = tiny();
        fr.observe(&hop(99, EventKind::ClientQuery, 1_000_000, FLAG_RESPONSE));
        for j in 1..=20u64 {
            fr.observe(&hop(j, EventKind::ClientQuery, 100, FLAG_RESPONSE));
        }
        assert!(fr.journeys.contains_key(&99), "slowest journey was evicted");
        assert_eq!(fr.stats().slowest_ns, 1_000_000);
    }

    #[test]
    fn failed_journeys_are_always_retained() {
        let mut fr = tiny();
        fr.observe(&hop(77, EventKind::ClientQuery, 50, FLAG_TIMEOUT));
        for j in 1..=50u64 {
            fr.observe(&hop(j, EventKind::ClientQuery, 100, FLAG_RESPONSE));
        }
        assert!(fr.journeys.contains_key(&77), "failed journey was evicted");
        // Prefetch and attack timeouts are not "failures".
        let mut fr2 = tiny();
        fr2.observe(&hop(5, EventKind::ClientQuery, 50, FLAG_TIMEOUT | FLAG_PREFETCH));
        assert!(!fr2.journeys.get(&5).unwrap().failed());
    }

    #[test]
    fn hop_cap_counts_not_stores() {
        let mut fr = tiny();
        for _ in 0..10 {
            fr.observe(&hop(1, EventKind::ChaosForward, 0, 0));
        }
        let log = fr.journeys.get(&1).unwrap();
        assert_eq!(log.hops.len(), 4);
        assert_eq!(log.hops_dropped, 6);
    }

    #[test]
    fn jsonl_dump_includes_wire_images() {
        let mut fr = tiny();
        fr.observe(&hop(3, EventKind::ClientQuery, 42, FLAG_RESPONSE));
        let mut buf = Vec::new();
        fr.dump_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"journey\":\"0000000000000003\""));
        assert!(text.contains("\"kind\":\"ClientQuery\""));
        // 48 bytes -> 96 hex chars.
        let wire = text.split("\"wire\":\"").nth(1).unwrap();
        assert_eq!(wire.split('"').next().unwrap().len(), 96);
    }
}
