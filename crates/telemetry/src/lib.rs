//! Low-overhead capture plane for the real-socket path.
//!
//! The paper validates its Atlas findings against passive production
//! traces (DITL Root and `.nl`, §5). This crate is our stand-in for
//! that capture infrastructure: every datagram handled by the serving
//! plane (and, optionally, by the load/resolver clients and the chaos
//! proxies) is recorded as one compact fixed-size [`Event`] in a
//! per-producer lock-free SPSC ring. A background drain thread spills
//! the rings into a versioned binary trace file ([`trace`]), keeps
//! streaming counters ([`SnapshotCell`]) and an HDR-style latency
//! histogram ([`LatencyHistogram`]) up to date.
//!
//! Design rules, in priority order:
//!
//! 1. **Never block the hot path.** Producers only do atomic loads and
//!    stores; when a ring is full the event is dropped and an overflow
//!    counter is bumped instead (drop accounting, not back-pressure).
//! 2. **Stay deterministic where the planes are.** The trace digest
//!    folds only the content fields that are reproducible under a
//!    fixed seed (qname hash, auth, kind, rcode, byte counts, flags)
//!    and is order-insensitive, so two same-seed runs produce the same
//!    digest even though worker interleaving differs.
//! 3. **Safe code only.** The SPSC ring is built from `AtomicU64`
//!    words with Lamport-style head/tail indices, no `unsafe`.

#![forbid(unsafe_code)]

mod collector;
mod event;
mod flight;
mod hist;
mod ring;
pub mod stats;
mod trace;

pub use collector::{Collector, CollectorConfig, Producer, SnapshotCell, TelemetrySnapshot, TraceSummary};
pub use event::{
    hash_bytes, hash_socket_addr, journey_from_payload, journey_id, qname_hash32, EventKind,
    TraceEvent as Event, FLAG_CHAOS_CORRUPT, FLAG_CHAOS_DELAY, FLAG_CHAOS_DROP, FLAG_CHAOS_DUP,
    FLAG_CHAOS_REORDER, FLAG_CHAOS_TRUNCATE, FLAG_ATTACK, FLAG_DECODE_ERROR, FLAG_PREFETCH,
    FLAG_RESPONSE, FLAG_RRL, FLAG_SEND_FAILED, FLAG_TCP, FLAG_TCP_RETRY, FLAG_TC_SEEN,
    FLAG_TIMEOUT, RCODE_NONE,
};
pub use flight::{FlightConfig, FlightRecorder, FlightStats, JourneyLog};
pub use hist::LatencyHistogram;
pub use ring::SpscRing;
pub use trace::{
    Trace, TraceWriter, EVENT_BYTES, EVENT_BYTES_V1, TRACE_FORMAT_VERSION, TRACE_FORMAT_VERSION_V1,
};
