//! Streaming HDR-style latency histogram: log₂ major buckets with 32
//! linear sub-buckets each, giving ≤ ~3% relative error over the full
//! `u64` nanosecond range in a fixed 2 KB-ish footprint of atomics.
//! Recording is wait-free (one `fetch_add` + one `fetch_max`), so the
//! drain thread can feed it while producers keep running.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::stats::interp_rank;

const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS; // 32 sub-buckets per major bucket
const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB as usize + SUB as usize;

#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Number of buckets in the shared log-linear table. The `metrics`
    /// crate's histograms reuse this exact table (via
    /// [`LatencyHistogram::bucket_index`] /
    /// [`LatencyHistogram::bucket_midpoint`]) so every percentile in the
    /// workspace is computed over the same value quantisation.
    pub const BUCKET_COUNT: usize = BUCKETS;

    pub fn new() -> Self {
        LatencyHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for value `v` in the shared log-linear table.
    pub fn bucket_index(v: u64) -> usize {
        Self::index(v)
    }

    /// Midpoint of the value range bucket `i` covers (inverse of
    /// [`LatencyHistogram::bucket_index`] up to quantisation).
    pub fn bucket_midpoint(i: usize) -> u64 {
        Self::value_of(i)
    }

    /// Count currently held in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i].load(Ordering::Relaxed)
    }

    /// Adds every bucket of `other` into `self` (plus total and max).
    ///
    /// This is how a retired ring's histogram folds into a long-lived
    /// collector aggregate: bucket-wise, so merged percentiles equal the
    /// percentiles of the concatenated sample streams (up to the shared
    /// bucket quantisation).
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (i, c) in other.counts.iter().enumerate() {
            let v = c.load(Ordering::Relaxed);
            if v != 0 {
                self.counts[i].fetch_add(v, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn index(v: u64) -> usize {
        if v < SUB {
            return v as usize;
        }
        let msb = 63 - u64::from(v.leading_zeros()); // ≥ SUB_BITS
        let major = msb - u64::from(SUB_BITS) + 1;
        (major * SUB + (v >> (msb - u64::from(SUB_BITS))) - SUB) as usize
    }

    /// Midpoint of the value range bucket `i` covers.
    fn value_of(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB {
            return i;
        }
        let major = i / SUB; // ≥ 1
        let sub = i % SUB;
        let low = (SUB + sub) << (major - 1);
        let width = 1u64 << (major - 1);
        low + width / 2
    }

    pub fn record(&self, v: u64) {
        self.counts[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate percentile `p` (0–100): walks the cumulative counts
    /// to the rank the shared estimator picks and returns that bucket's
    /// midpoint. `None` when nothing has been recorded.
    pub fn value_at(&self, p: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let (target, _, _) = interp_rank(total as usize, p);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum > target as u64 {
                return Some(Self::value_of(i).min(self.max()));
            }
        }
        Some(self.max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_value_stay_within_error_bound() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1_000, 123_456, u32::MAX as u64, 1 << 60] {
            let rep = LatencyHistogram::value_of(LatencyHistogram::index(v));
            let err = rep.abs_diff(v) as f64 / (v.max(1)) as f64;
            assert!(err <= 0.04, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn index_is_monotone_in_value() {
        let mut last = 0usize;
        // The chained powers must continue upward from the dense range
        // (the walk tracks a single running maximum).
        for v in (0..10_000u64).chain((14..63).map(|s| 1u64 << s)) {
            let i = LatencyHistogram::index(v);
            if v > 0 {
                assert!(i >= last, "index not monotone at v={v}");
            }
            last = i;
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1_000); // 1µs .. 10ms ramp
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000_000);
        let p50 = h.value_at(50.0).unwrap();
        let p99 = h.value_at(99.0).unwrap();
        assert!((p50 as f64 - 5_000_000.0).abs() / 5_000_000.0 < 0.05, "p50={p50}");
        assert!((p99 as f64 - 9_900_000.0).abs() / 9_900_000.0 < 0.05, "p99={p99}");
        assert!(h.value_at(100.0).unwrap() <= h.max());
        assert!(LatencyHistogram::new().value_at(50.0).is_none());
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(h.value_at(p), None, "p={p}");
        }
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = LatencyHistogram::new();
        h.record(123_456);
        for p in [0.0, 50.0, 99.9, 100.0] {
            let v = h.value_at(p).unwrap();
            // One sample: every percentile is that sample, up to the
            // ≤ ~3% bucket quantisation (and clamped to the exact max).
            assert!(v <= 123_456 && v.abs_diff(123_456) as f64 / 123_456.0 <= 0.04, "p={p} v={v}");
        }
        assert_eq!(h.value_at(100.0).unwrap(), h.max());
    }

    #[test]
    fn all_equal_samples_collapse_to_one_bucket() {
        let h = LatencyHistogram::new();
        for _ in 0..500 {
            h.record(42_000);
        }
        assert_eq!(h.count(), 500);
        let i = LatencyHistogram::bucket_index(42_000);
        assert_eq!(h.bucket_count(i), 500);
        let p1 = h.value_at(1.0).unwrap();
        let p99 = h.value_at(99.0).unwrap();
        assert_eq!(p1, p99, "degenerate distribution must have zero spread");
    }

    #[test]
    fn retired_ring_merge_equals_concatenated_stream() {
        // Two rings record disjoint chunks of one stream; folding the
        // retired ring into the live one must yield the same buckets,
        // count, max and percentiles as one histogram fed everything.
        let retired = LatencyHistogram::new();
        let live = LatencyHistogram::new();
        let all = LatencyHistogram::new();
        for v in 1..=4_000u64 {
            let target = if v % 3 == 0 { &retired } else { &live };
            target.record(v * 250);
            all.record(v * 250);
        }
        live.merge_from(&retired);
        assert_eq!(live.count(), all.count());
        assert_eq!(live.max(), all.max());
        for i in 0..LatencyHistogram::BUCKET_COUNT {
            assert_eq!(live.bucket_count(i), all.bucket_count(i), "bucket {i}");
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(live.value_at(p), all.value_at(p), "p={p}");
        }
    }
}
