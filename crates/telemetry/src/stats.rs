//! The workspace's one percentile estimator.
//!
//! `percentile_sorted` started life in `dnswild-analysis` and feeds the
//! figure pipelines, so its float behaviour must not change (the
//! `results/exp_*.txt` goldens depend on it byte for byte). It lives
//! here — the leaf of the dependency graph — so `netio::load`,
//! `bench::Stats`, and the telemetry histogram can share it instead of
//! each carrying its own nearest-rank variant; `analysis::stats`
//! re-exports it unchanged.

/// Interpolated rank of percentile `p` (0–100, clamped) in a sorted
/// collection of `len` items: returns `(lo, hi, frac)` such that the
/// estimate is `v[lo] + (v[hi] - v[lo]) * frac` (linear interpolation
/// between closest ranks, the R type-7 / NumPy default).
pub fn interp_rank(len: usize, p: f64) -> (usize, usize, f64) {
    assert!(len > 0, "interp_rank of an empty collection");
    let p = p.clamp(0.0, 100.0);
    if len == 1 {
        return (0, 0, 0.0);
    }
    let rank = p / 100.0 * (len - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    (lo, hi, rank - lo as f64)
}

/// Percentile `p` (0–100) of an ascending-sorted slice, linearly
/// interpolated between the closest ranks.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    let (lo, hi, frac) = interp_rank(sorted.len(), p);
    if lo == hi {
        return sorted[lo];
    }
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Integer-sample variant (latency nanoseconds): interpolates in `f64`
/// and rounds to the nearest integer. Returns `None` when empty.
pub fn percentile_sorted_u64(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let (lo, hi, frac) = interp_rank(sorted.len(), p);
    if lo == hi {
        return Some(sorted[lo]);
    }
    let (a, b) = (sorted[lo] as f64, sorted[hi] as f64);
    Some((a + (b - a) * frac).round() as u64)
}

/// As [`percentile_sorted_u64`] for `u128` samples (bench wall-clocks).
pub fn percentile_sorted_u128(sorted: &[u128], p: f64) -> Option<u128> {
    if sorted.is_empty() {
        return None;
    }
    let (lo, hi, frac) = interp_rank(sorted.len(), p);
    if lo == hi {
        return Some(sorted[lo]);
    }
    let (a, b) = (sorted[lo] as f64, sorted[hi] as f64);
    Some((a + (b - a) * frac).round() as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_and_midpoint() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 100.0), 40.0);
        assert_eq!(percentile_sorted(&v, 50.0), 25.0);
        assert_eq!(percentile_sorted(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn clamps_out_of_range() {
        let v = [1.0, 2.0];
        assert_eq!(percentile_sorted(&v, -5.0), 1.0);
        assert_eq!(percentile_sorted(&v, 250.0), 2.0);
    }

    #[test]
    fn integer_variants_round() {
        let v = [10u64, 20, 30, 40];
        assert_eq!(percentile_sorted_u64(&v, 0.0), Some(10));
        assert_eq!(percentile_sorted_u64(&v, 100.0), Some(40));
        assert_eq!(percentile_sorted_u64(&v, 50.0), Some(25));
        assert_eq!(percentile_sorted_u64(&[], 50.0), None);
        let w = [10u128, 11];
        assert_eq!(percentile_sorted_u128(&w, 50.0), Some(11)); // 10.5 rounds up
    }

    #[test]
    fn interp_rank_matches_direct_lerp() {
        let v: Vec<f64> = (0..101).map(f64::from).collect();
        for p in [0.0, 12.5, 50.0, 90.0, 99.0, 100.0] {
            assert!((percentile_sorted(&v, p) - p).abs() < 1e-9);
        }
    }
}
