//! A lock-free single-producer/single-consumer ring of trace events,
//! written entirely in safe code: each slot is six `AtomicU64` words
//! and the head/tail are Lamport-style monotonically increasing
//! counters. The producer is a serving-plane worker (one ring each);
//! the sole consumer is the collector's drain thread.
//!
//! The safety argument is the classic SPSC one, expressed through
//! acquire/release pairs instead of `unsafe` pointer juggling:
//!
//! * the producer publishes a slot by storing `tail` with `Release`
//!   *after* the slot words are written; the consumer's `Acquire` load
//!   of `tail` therefore observes completed slots only;
//! * the consumer frees a slot by storing `head` with `Release` *after*
//!   it has read the words; the producer's `Acquire` load of `head`
//!   therefore never overwrites a slot still being read.
//!
//! When the ring is full the producer drops the event and bumps
//! `overflow` — capture must never apply back-pressure to the hot path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::event::TraceEvent;

const WORDS: usize = 6;

struct Slot([AtomicU64; WORDS]);

impl Slot {
    fn new() -> Self {
        Slot(std::array::from_fn(|_| AtomicU64::new(0)))
    }
}

pub struct SpscRing {
    slots: Vec<Slot>,
    mask: u64,
    /// Next slot the producer will write (monotonic, not wrapped).
    tail: AtomicU64,
    /// Next slot the consumer will read (monotonic, not wrapped).
    head: AtomicU64,
    /// Events dropped because the ring was full.
    overflow: AtomicU64,
    /// Set when the producer goes away; once also empty, the consumer
    /// may retire the ring from its sweep list.
    abandoned: AtomicBool,
}

impl SpscRing {
    /// `capacity` is rounded up to a power of two (minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        SpscRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: (cap - 1) as u64,
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            abandoned: AtomicBool::new(false),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: record one event. Returns `false` (and counts the
    /// overflow) when the ring is full. Never blocks.
    pub fn push(&self, event: &TraceEvent) -> bool {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Acquire);
        if t.wrapping_sub(h) >= self.slots.len() as u64 {
            self.overflow.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let slot = &self.slots[(t & self.mask) as usize];
        for (w, v) in slot.0.iter().zip(event.encode_words()) {
            w.store(v, Ordering::Relaxed);
        }
        self.tail.store(t.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: pop one event, or `None` when the ring is empty.
    /// Must only be called from a single consumer thread.
    pub fn pop(&self) -> Option<TraceEvent> {
        let h = self.head.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Acquire);
        if h == t {
            return None;
        }
        let slot = &self.slots[(h & self.mask) as usize];
        let mut words = [0u64; WORDS];
        for (out, w) in words.iter_mut().zip(slot.0.iter()) {
            *out = w.load(Ordering::Relaxed);
        }
        self.head.store(h.wrapping_add(1), Ordering::Release);
        Some(TraceEvent::decode_words(words))
    }

    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Producer side, on drop: no more pushes will ever arrive.
    pub fn abandon(&self) {
        self.abandoned.store(true, Ordering::Release);
    }

    /// Whether the producer has gone away. Once this returns `true` and
    /// the ring is empty it can never become non-empty again.
    pub fn is_abandoned(&self) -> bool {
        self.abandoned.load(Ordering::Acquire)
    }

    pub fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Acquire);
        let h = self.head.load(Ordering::Acquire);
        t.wrapping_sub(h) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::event::EventKind;

    fn ev(i: u64) -> TraceEvent {
        let mut e = TraceEvent::new(EventKind::ServerQuery);
        e.ts_ns = i;
        e.qname_hash = i as u32;
        e
    }

    #[test]
    fn fifo_order_and_empty() {
        let ring = SpscRing::new(8);
        assert!(ring.pop().is_none());
        for i in 0..5 {
            assert!(ring.push(&ev(i)));
        }
        for i in 0..5 {
            assert_eq!(ring.pop().unwrap().ts_ns, i);
        }
        assert!(ring.pop().is_none());
    }

    #[test]
    fn full_ring_counts_overflow_instead_of_blocking() {
        let ring = SpscRing::new(8);
        for i in 0..8 {
            assert!(ring.push(&ev(i)));
        }
        assert!(!ring.push(&ev(99)));
        assert!(!ring.push(&ev(100)));
        assert_eq!(ring.overflow(), 2);
        // Draining frees slots again.
        assert_eq!(ring.pop().unwrap().ts_ns, 0);
        assert!(ring.push(&ev(8)));
        assert_eq!(ring.len(), 8);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(SpscRing::new(0).capacity(), 8);
        assert_eq!(SpscRing::new(9).capacity(), 16);
        assert_eq!(SpscRing::new(8192).capacity(), 8192);
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing_that_fit() {
        let ring = Arc::new(SpscRing::new(1024));
        let n = 100_000u64;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..n {
                    if ring.push(&ev(i)) {
                        pushed += 1;
                    }
                }
                pushed
            })
        };
        let mut got = Vec::new();
        loop {
            match ring.pop() {
                Some(e) => got.push(e.ts_ns),
                None => {
                    if producer.is_finished() && ring.is_empty() {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        let pushed = producer.join().unwrap();
        assert_eq!(got.len() as u64, pushed);
        assert_eq!(pushed + ring.overflow(), n);
        // Events arrive in order even under concurrency (SPSC FIFO).
        assert!(got.windows(2).all(|w| w[0] < w[1]), "events reordered");
    }
}
