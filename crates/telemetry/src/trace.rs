//! The versioned binary trace format — our miniature DITL capture file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "DWTRACE2"                      8 bytes
//! version u16                             TRACE_FORMAT_VERSION
//! auths   u16 count, then per auth:
//!           u16 id, u8 len, len bytes     (UTF-8 site/auth code)
//! blocks  repeated until EOF:
//!           0x01 + 48-byte event          one TraceEvent
//!           0x02 + u64 events + u64 overflow   footer (must be last)
//! ```
//!
//! The auth table is written up front so readers can map `auth_id`
//! without scanning; the footer carries drop accounting so a trace
//! that lost events to ring overflow says so in-band. A trace without
//! a footer (writer crashed) is rejected rather than silently short.
//!
//! Version 2 (journey ids + wire DNS ids, 48-byte events) is what the
//! writer emits; the reader also accepts version-1 files (`DWTRACE1`
//! magic, 40-byte events) through a shim that zero-fills the fields v1
//! did not carry, so traces captured before the upgrade keep ingesting.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use detrand::splitmix64;

use crate::event::TraceEvent;

pub const TRACE_FORMAT_VERSION: u16 = 2;
pub const EVENT_BYTES: usize = 48;

/// The version-1 format, still accepted by [`Trace::read`].
pub const TRACE_FORMAT_VERSION_V1: u16 = 1;
/// Event payload size in a version-1 trace (five words, no journey).
pub const EVENT_BYTES_V1: usize = 40;

const MAGIC: &[u8; 8] = b"DWTRACE2";
const MAGIC_V1: &[u8; 8] = b"DWTRACE1";
const TAG_EVENT: u8 = 0x01;
const TAG_FOOTER: u8 = 0x02;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Streaming writer; owned by the collector's drain thread.
pub struct TraceWriter<W: Write> {
    out: W,
    events: u64,
}

impl TraceWriter<BufWriter<File>> {
    pub fn create(path: &Path, auths: &[String]) -> io::Result<Self> {
        TraceWriter::new(BufWriter::new(File::create(path)?), auths)
    }
}

impl<W: Write> TraceWriter<W> {
    pub fn new(mut out: W, auths: &[String]) -> io::Result<Self> {
        out.write_all(MAGIC)?;
        out.write_all(&TRACE_FORMAT_VERSION.to_le_bytes())?;
        let count = u16::try_from(auths.len()).map_err(|_| bad("too many auths"))?;
        out.write_all(&count.to_le_bytes())?;
        for (id, code) in auths.iter().enumerate() {
            let bytes = code.as_bytes();
            let len = u8::try_from(bytes.len()).map_err(|_| bad("auth code too long"))?;
            out.write_all(&(id as u16).to_le_bytes())?;
            out.write_all(&[len])?;
            out.write_all(bytes)?;
        }
        Ok(TraceWriter { out, events: 0 })
    }

    pub fn write_event(&mut self, ev: &TraceEvent) -> io::Result<()> {
        let mut buf = [0u8; 1 + EVENT_BYTES];
        buf[0] = TAG_EVENT;
        for (i, w) in ev.encode_words().iter().enumerate() {
            buf[1 + i * 8..1 + (i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        self.out.write_all(&buf)?;
        self.events += 1;
        Ok(())
    }

    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Write the footer (event count + overflow drops) and flush.
    pub fn finish(mut self, overflow: u64) -> io::Result<()> {
        self.out.write_all(&[TAG_FOOTER])?;
        self.out.write_all(&self.events.to_le_bytes())?;
        self.out.write_all(&overflow.to_le_bytes())?;
        self.out.flush()
    }
}

/// A fully loaded trace.
#[derive(Debug, Clone)]
pub struct Trace {
    pub version: u16,
    /// `auth_id` → site/auth code, in table order.
    pub auths: Vec<String>,
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow (from the footer).
    pub overflow: u64,
}

impl Trace {
    pub fn read_from(path: &Path) -> io::Result<Self> {
        Trace::read(BufReader::new(File::open(path)?))
    }

    pub fn read<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC && &magic != MAGIC_V1 {
            return Err(bad("not a dnswild trace (bad magic)"));
        }
        let version = read_u16(&mut r)?;
        let expected = if &magic == MAGIC_V1 {
            TRACE_FORMAT_VERSION_V1
        } else {
            TRACE_FORMAT_VERSION
        };
        if version != expected {
            return Err(bad(format!("unsupported trace version {version}")));
        }
        let count = read_u16(&mut r)?;
        let mut auths = vec![String::new(); count as usize];
        for _ in 0..count {
            let id = read_u16(&mut r)? as usize;
            let mut len = [0u8; 1];
            r.read_exact(&mut len)?;
            let mut code = vec![0u8; len[0] as usize];
            r.read_exact(&mut code)?;
            let code = String::from_utf8(code).map_err(|_| bad("auth code not UTF-8"))?;
            *auths.get_mut(id).ok_or_else(|| bad("auth id out of range"))? = code;
        }
        let mut events = Vec::new();
        let mut footer: Option<(u64, u64)> = None;
        loop {
            let mut tag = [0u8; 1];
            match r.read_exact(&mut tag) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            }
            match tag[0] {
                TAG_EVENT if version == TRACE_FORMAT_VERSION_V1 => {
                    let mut buf = [0u8; EVENT_BYTES_V1];
                    r.read_exact(&mut buf)?;
                    let mut words = [0u64; 5];
                    for (i, w) in words.iter_mut().enumerate() {
                        *w = u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().unwrap());
                    }
                    // v1 reserved everything above the rcode byte pair.
                    if words[4] >> 16 != 0 {
                        return Err(bad("reserved event bytes not zero"));
                    }
                    events.push(TraceEvent::decode_words_v1(words));
                }
                TAG_EVENT => {
                    let mut buf = [0u8; EVENT_BYTES];
                    r.read_exact(&mut buf)?;
                    let mut words = [0u64; 6];
                    for (i, w) in words.iter_mut().enumerate() {
                        *w = u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().unwrap());
                    }
                    // v2 reclaimed bits 16..31 of word 4 for the dns id;
                    // the upper half stays reserved for a future format.
                    if words[4] >> 32 != 0 {
                        return Err(bad("reserved event bytes not zero"));
                    }
                    events.push(TraceEvent::decode_words(words));
                }
                TAG_FOOTER => {
                    let count = read_u64(&mut r)?;
                    let overflow = read_u64(&mut r)?;
                    footer = Some((count, overflow));
                }
                other => return Err(bad(format!("unknown block tag {other:#x}"))),
            }
        }
        let (count, overflow) = footer.ok_or_else(|| bad("trace has no footer (truncated?)"))?;
        if count != events.len() as u64 {
            return Err(bad(format!(
                "footer claims {count} events, file holds {}",
                events.len()
            )));
        }
        Ok(Trace { version, auths, events, overflow })
    }

    pub fn auth_code(&self, id: u16) -> &str {
        self.auths.get(id as usize).map(String::as_str).unwrap_or("?")
    }

    /// Order-insensitive digest over the deterministic event content.
    ///
    /// Each event contributes `splitmix64(key ^ splitmix64(occurrence))`
    /// where `key` is [`TraceEvent::content_key`] and `occurrence`
    /// numbers repeats of identical content; the contributions are
    /// folded with a wrapping sum (the chaos plane's digest idiom), so
    /// worker interleaving cannot change the result — only the multiset
    /// of event contents can.
    pub fn digest(&self) -> u64 {
        let mut seen: HashMap<u64, u64> = HashMap::new();
        let mut digest = 0u64;
        for ev in &self.events {
            let key = ev.content_key();
            let occurrence = seen.entry(key).or_insert(0);
            digest = digest.wrapping_add(splitmix64(key ^ splitmix64(*occurrence ^ 0x7472_6163)));
            *occurrence += 1;
        }
        digest
    }
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FLAG_RESPONSE};

    fn ev(i: u64, kind: EventKind) -> TraceEvent {
        let mut e = TraceEvent::new(kind);
        e.ts_ns = i * 1000;
        e.qname_hash = (i % 3) as u32;
        e.flags = FLAG_RESPONSE;
        e.rcode = 0;
        e
    }

    fn write_trace(events: &[TraceEvent], overflow: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        let auths = vec!["FRA".to_string(), "GRU".to_string()];
        let mut w = TraceWriter::new(&mut buf, &auths).unwrap();
        for e in events {
            w.write_event(e).unwrap();
        }
        w.finish(overflow).unwrap();
        buf
    }

    #[test]
    fn file_round_trip() {
        let events: Vec<_> = (0..10).map(|i| ev(i, EventKind::ServerQuery)).collect();
        let bytes = write_trace(&events, 3);
        let t = Trace::read(&bytes[..]).unwrap();
        assert_eq!(t.version, TRACE_FORMAT_VERSION);
        assert_eq!(t.auths, vec!["FRA", "GRU"]);
        assert_eq!(t.events, events);
        assert_eq!(t.overflow, 3);
        assert_eq!(t.auth_code(0), "FRA");
        assert_eq!(t.auth_code(9), "?");
    }

    /// Hand-write a DWTRACE1 file the way the old writer did: 40-byte
    /// events, no journey word, version 1 magic.
    fn write_trace_v1(events: &[TraceEvent], overflow: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DWTRACE1");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes()); // one auth
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.push(3);
        buf.extend_from_slice(b"FRA");
        for e in events {
            buf.push(TAG_EVENT);
            for w in &e.encode_words()[..5] {
                buf.extend_from_slice(&w.to_le_bytes());
            }
        }
        buf.push(TAG_FOOTER);
        buf.extend_from_slice(&(events.len() as u64).to_le_bytes());
        buf.extend_from_slice(&overflow.to_le_bytes());
        buf
    }

    #[test]
    fn v1_traces_still_ingest_with_zeroed_journeys() {
        let mut events: Vec<_> = (0..4).map(|i| ev(i, EventKind::ClientQuery)).collect();
        let bytes = write_trace_v1(&events, 2);
        let t = Trace::read(&bytes[..]).unwrap();
        assert_eq!(t.version, TRACE_FORMAT_VERSION_V1);
        assert_eq!(t.auths, vec!["FRA"]);
        assert_eq!(t.overflow, 2);
        assert!(t.events.iter().all(|e| e.journey == 0 && e.dns_id == 0));
        // Same workload, both formats: the digest must agree, which is
        // what lets old and new captures be compared at all.
        let v1_digest = t.digest();
        for (i, e) in events.iter_mut().enumerate() {
            e.journey = 0x1000 + i as u64;
            e.dns_id = i as u16;
        }
        let v2 = Trace::read(&write_trace(&events, 2)[..]).unwrap();
        assert_eq!(v2.digest(), v1_digest);
        // A v1 event with set high word-4 bits is still rejected.
        let mut dirty = write_trace_v1(&[ev(0, EventKind::ClientQuery)], 0);
        // First event block starts after magic(8)+ver(2)+count(2)+entry(2+1+3).
        let word4_hi = 18 + 1 + 4 * 8 + 4;
        assert_eq!(dirty[word4_hi], 0);
        dirty[word4_hi] = 0xff;
        assert!(Trace::read(&dirty[..]).is_err());
    }

    #[test]
    fn truncated_and_corrupt_traces_are_rejected() {
        let bytes = write_trace(&[ev(1, EventKind::ServerQuery)], 0);
        // No footer.
        assert!(Trace::read(&bytes[..bytes.len() - 17]).is_err());
        // Bad magic.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(Trace::read(&bad_magic[..]).is_err());
        // Future version.
        let mut bad_version = bytes.clone();
        bad_version[8] = 9;
        assert!(Trace::read(&bad_version[..]).is_err());
    }

    #[test]
    fn digest_is_order_insensitive_but_content_sensitive() {
        let mut events: Vec<_> = (0..20).map(|i| ev(i, EventKind::ServerQuery)).collect();
        let a = Trace::read(&write_trace(&events, 0)[..]).unwrap().digest();
        events.reverse();
        let b = Trace::read(&write_trace(&events, 0)[..]).unwrap().digest();
        assert_eq!(a, b, "reordering events changed the digest");
        // Timing changes do not matter…
        for e in &mut events {
            e.ts_ns += 1;
            e.latency_ns += 7;
            e.client_hash ^= 42;
        }
        assert_eq!(Trace::read(&write_trace(&events, 0)[..]).unwrap().digest(), a);
        // …nor does DWTRACE2 journey correlation (journey id and wire
        // id): the digest keys on workload content, so a trace captured
        // with journey stamping on compares equal to one captured
        // before the upgrade.
        for (i, e) in events.iter_mut().enumerate() {
            e.journey = 0xdead_beef ^ (i as u64);
            e.dns_id = i as u16;
        }
        assert_eq!(Trace::read(&write_trace(&events, 0)[..]).unwrap().digest(), a);
        // …but content changes do.
        events[0].rcode = 2;
        assert_ne!(Trace::read(&write_trace(&events, 0)[..]).unwrap().digest(), a);
    }

    #[test]
    fn digest_counts_duplicate_multiplicity() {
        let e = ev(1, EventKind::ServerQuery);
        let one = Trace::read(&write_trace(&[e], 0)[..]).unwrap().digest();
        let two = Trace::read(&write_trace(&[e, e], 0)[..]).unwrap().digest();
        assert_ne!(one, two, "duplicate events must change the digest");
    }
}
