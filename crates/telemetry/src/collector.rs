//! The collector: owns the trace file, hands out per-worker producers,
//! and runs the drain thread that moves events from the SPSC rings into
//! the trace, the counter snapshot, and the latency histogram.
//!
//! Producers register dynamically (chaos-proxy sessions spawn threads
//! on demand), so the ring list sits behind a mutex — but that mutex is
//! only touched at registration and by the drain sweep, never on the
//! per-event path.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::event::{
    EventKind, TraceEvent, FLAG_DECODE_ERROR, FLAG_RESPONSE, FLAG_RRL, FLAG_TIMEOUT,
};
use crate::flight::{FlightConfig, FlightRecorder, FlightStats};
use crate::hist::LatencyHistogram;
use crate::ring::SpscRing;
use crate::trace::TraceWriter;

/// How the collector is wired up; start one with [`Collector::start`].
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Trace file path (created/truncated).
    pub path: PathBuf,
    /// Auth/site codes written into the trace's auth table; events
    /// reference them by index (`auth_id`).
    pub auths: Vec<String>,
    /// Per-producer ring capacity (rounded up to a power of two). The
    /// default of 8192 gives a worker ~160k events/s of headroom per
    /// 50 ms drain interval — well above what the serving plane
    /// reaches on one host.
    pub ring_capacity: usize,
    /// How often the drain thread sweeps the rings.
    pub drain_interval: Duration,
    /// Flight-recorder bounds (last-N ring, slowest-K, failed cap).
    pub flight: FlightConfig,
}

impl CollectorConfig {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CollectorConfig {
            path: path.into(),
            auths: Vec::new(),
            ring_capacity: 8192,
            // Sparse on purpose: every drain wakeup preempts a worker
            // on small hosts, so the sweep cadence trades snapshot
            // freshness for hot-path quiet. 50 ms keeps the traced
            // throughput within a few percent of untraced.
            drain_interval: Duration::from_millis(50),
            flight: FlightConfig::default(),
        }
    }

    pub fn auths<I, S>(mut self, auths: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.auths = auths.into_iter().map(Into::into).collect();
        self
    }

    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    pub fn drain_interval(mut self, interval: Duration) -> Self {
        self.drain_interval = interval;
        self
    }

    pub fn flight(mut self, flight: FlightConfig) -> Self {
        self.flight = flight;
        self
    }
}

/// Aggregated counters maintained by the drain thread; cheap enough to
/// read from anywhere (the engine's `CH TXT stats.dnswild.` answer
/// reads one of these).
#[derive(Debug, Default)]
pub struct SnapshotCell {
    events: AtomicU64,
    queries: AtomicU64,
    answered: AtomicU64,
    decode_errors: AtomicU64,
    overflow: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_stale: AtomicU64,
    rrl_dropped: AtomicU64,
    rrl_slipped: AtomicU64,
    journeys_recorded: AtomicU64,
    journeys_dropped: AtomicU64,
    journey_slowest_ns: AtomicU64,
}

impl SnapshotCell {
    fn apply(&self, ev: &TraceEvent) {
        self.events.fetch_add(1, Ordering::Relaxed);
        if ev.kind == EventKind::ServerQuery {
            self.queries.fetch_add(1, Ordering::Relaxed);
            if ev.flags & FLAG_RESPONSE != 0 {
                self.answered.fetch_add(1, Ordering::Relaxed);
            }
            // The limiter's verdict rides on the server event: a slip
            // still sent a (TC=1) response, a drop sent nothing.
            if ev.flags & FLAG_RRL != 0 {
                if ev.flags & FLAG_RESPONSE != 0 {
                    self.rrl_slipped.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.rrl_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if ev.kind == EventKind::CacheLookup {
            if ev.flags & FLAG_RESPONSE != 0 {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else if ev.flags & FLAG_TIMEOUT != 0 {
                self.cache_stale.fetch_add(1, Ordering::Relaxed);
            } else {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        if ev.flags & FLAG_DECODE_ERROR != 0 {
            self.decode_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn set_overflow(&self, overflow: u64) {
        self.overflow.store(overflow, Ordering::Relaxed);
    }

    fn set_flight(&self, stats: FlightStats) {
        self.journeys_recorded.store(stats.recorded, Ordering::Relaxed);
        self.journeys_dropped.store(stats.dropped, Ordering::Relaxed);
        self.journey_slowest_ns.store(stats.slowest_ns, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            events: self.events.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_stale: self.cache_stale.load(Ordering::Relaxed),
            rrl_dropped: self.rrl_dropped.load(Ordering::Relaxed),
            rrl_slipped: self.rrl_slipped.load(Ordering::Relaxed),
            journeys_recorded: self.journeys_recorded.load(Ordering::Relaxed),
            journeys_dropped: self.journeys_dropped.load(Ordering::Relaxed),
            journey_slowest_ns: self.journey_slowest_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the collector's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Events drained so far (all kinds).
    pub events: u64,
    /// Server-side well-formed queries seen.
    pub queries: u64,
    /// Of those, how many got a response datagram.
    pub answered: u64,
    /// Events carrying the decode-error flag.
    pub decode_errors: u64,
    /// Ring-overflow drops observed so far.
    pub overflow: u64,
    /// Record-cache lookups answered from a live entry.
    pub cache_hits: u64,
    /// Record-cache lookups that went to the wire.
    pub cache_misses: u64,
    /// Record-cache lookups answered stale (RFC 8767).
    pub cache_stale: u64,
    /// Server responses suppressed by response-rate limiting.
    pub rrl_dropped: u64,
    /// Server responses slipped as TC=1 by response-rate limiting.
    pub rrl_slipped: u64,
    /// Journeys admitted to the flight recorder.
    pub journeys_recorded: u64,
    /// Journeys the flight recorder evicted unpinned.
    pub journeys_dropped: u64,
    /// Worst client RTT retained in the flight recorder (exemplar).
    pub journey_slowest_ns: u64,
}

/// What the trace ended up holding, returned by [`Collector::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    pub events: u64,
    pub overflow: u64,
}

struct Shared {
    rings: Mutex<Vec<Arc<SpscRing>>>,
    stop: AtomicBool,
    snapshot: Arc<SnapshotCell>,
    histogram: LatencyHistogram,
    /// The flight recorder. Locked by the drain thread once per sweep
    /// and by dump requests; never on the per-event hot path.
    flight: Mutex<FlightRecorder>,
    /// Overflow carried over from retired rings (producer dropped,
    /// backlog fully drained), so the footer never loses drops.
    retired_overflow: AtomicU64,
    /// Wakes the drain thread out of its inter-sweep wait so `finish`
    /// returns promptly regardless of the configured interval.
    wake_lock: Mutex<()>,
    wake_cv: Condvar,
}

impl Shared {
    /// Sum of overflow counters across every live ring plus what
    /// retired rings left behind.
    fn total_overflow(&self) -> u64 {
        self.retired_overflow.load(Ordering::Relaxed)
            + self.rings.lock().unwrap().iter().map(|r| r.overflow()).sum::<u64>()
    }
}

/// Hot-path handle: one per worker thread. Recording is two atomic
/// loads, five stores, and one store — or a counter bump on overflow.
pub struct Producer {
    ring: Arc<SpscRing>,
    epoch: Instant,
}

impl Producer {
    /// Nanoseconds since the collector started (event timestamp base).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Record one event; returns `false` if the ring was full (the
    /// drop has been counted — nothing else to do).
    pub fn record(&self, ev: &TraceEvent) -> bool {
        self.ring.push(ev)
    }
}

impl Drop for Producer {
    fn drop(&mut self) {
        // Let the drain thread retire this ring once it has swept the
        // remaining backlog — long-lived collectors (benches, chaos
        // proxies spawning sessions) must not accumulate dead rings.
        self.ring.abandon();
    }
}

/// The drain thread's join handle; it reports `(events, bytes)` written.
type DrainHandle = thread::JoinHandle<io::Result<(u64, u64)>>;

pub struct Collector {
    shared: Arc<Shared>,
    epoch: Instant,
    ring_capacity: usize,
    drain: Mutex<Option<DrainHandle>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("ring_capacity", &self.ring_capacity)
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// Open the trace file, write its header, and start the drain
    /// thread.
    pub fn start(config: CollectorConfig) -> io::Result<Collector> {
        let writer = TraceWriter::create(&config.path, &config.auths)?;
        let shared = Arc::new(Shared {
            rings: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            snapshot: Arc::new(SnapshotCell::default()),
            histogram: LatencyHistogram::new(),
            flight: Mutex::new(FlightRecorder::new(config.flight)),
            retired_overflow: AtomicU64::new(0),
            wake_lock: Mutex::new(()),
            wake_cv: Condvar::new(),
        });
        let drain_shared = Arc::clone(&shared);
        let interval = config.drain_interval;
        let handle = thread::Builder::new()
            .name("dnswild-telemetry-drain".into())
            .spawn(move || drain_loop(drain_shared, writer, interval))
            .expect("spawn telemetry drain thread");
        Ok(Collector {
            shared,
            epoch: Instant::now(),
            ring_capacity: config.ring_capacity,
            drain: Mutex::new(Some(handle)),
        })
    }

    /// Register a new producer ring (configured capacity). Producers
    /// registered at any time share the collector's epoch, so their
    /// timestamps are comparable. Stop all producers *before* calling
    /// [`Collector::finish`]; events pushed after the final sweep are
    /// not written.
    pub fn producer(&self) -> Producer {
        let ring = Arc::new(SpscRing::new(self.ring_capacity));
        self.shared.rings.lock().unwrap().push(Arc::clone(&ring));
        Producer { ring, epoch: self.epoch }
    }

    /// Number of live producer rings (dropped producers are retired by
    /// the drain thread once their backlog is swept). Tests and stats.
    pub fn ring_count(&self) -> usize {
        self.shared.rings.lock().unwrap().len()
    }

    /// Live counters (drained events only — the gap to the rings is at
    /// most one drain interval's worth).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let snap = &self.shared.snapshot;
        snap.set_overflow(self.shared.total_overflow());
        snap.snapshot()
    }

    /// Handle for the engine's `stats.dnswild.` answer path: the cell
    /// keeps updating as long as the drain thread runs.
    pub fn snapshot_cell(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.shared.snapshot)
    }

    /// Drained-so-far latency percentile from the streaming histogram
    /// (uses the workspace's shared estimator for rank selection).
    pub fn latency_ns_at(&self, p: f64) -> Option<u64> {
        self.shared.histogram.value_at(p)
    }

    /// Flight-recorder counters as of the last drain sweep.
    pub fn flight_stats(&self) -> FlightStats {
        self.shared.flight.lock().unwrap().stats()
    }

    /// Dump every retained journey (failed pins, slowest-K, recency
    /// ring) as JSONL. Callable at any point in the run — the recorder
    /// lock briefly pauses the drain sweep, never the hot path.
    pub fn dump_flight(&self, path: &Path) -> io::Result<u64> {
        let flight = self.shared.flight.lock().unwrap();
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        flight.dump_jsonl(&mut out)?;
        use std::io::Write as _;
        out.flush()?;
        Ok(flight.retained() as u64)
    }

    /// Stop the drain thread, drain whatever is left in the rings,
    /// write the trace footer, and return the totals.
    pub fn finish(&self) -> io::Result<TraceSummary> {
        let handle = self
            .drain
            .lock()
            .unwrap()
            .take()
            .ok_or_else(|| io::Error::other("collector already finished"))?;
        self.shared.stop.store(true, Ordering::Release);
        // Notify under the wake lock so the drain thread cannot check
        // `stop` and then miss the wakeup while entering its wait.
        {
            let _guard = self.shared.wake_lock.lock().unwrap();
            self.shared.wake_cv.notify_all();
        }
        let (events, overflow) = handle
            .join()
            .map_err(|_| io::Error::other("telemetry drain thread panicked"))??;
        Ok(TraceSummary { events, overflow })
    }
}

fn drain_loop(
    shared: Arc<Shared>,
    mut writer: TraceWriter<std::io::BufWriter<std::fs::File>>,
    interval: Duration,
) -> io::Result<(u64, u64)> {
    loop {
        let stopping = shared.stop.load(Ordering::Acquire);
        // Snapshot the ring list, then sweep without holding the lock
        // so registration never contends with producers.
        let rings: Vec<Arc<SpscRing>> = shared.rings.lock().unwrap().clone();
        {
            let mut flight = shared.flight.lock().unwrap();
            for ring in &rings {
                while let Some(ev) = ring.pop() {
                    writer.write_event(&ev)?;
                    shared.snapshot.apply(&ev);
                    flight.observe(&ev);
                    if ev.latency_ns > 0 {
                        shared.histogram.record(u64::from(ev.latency_ns));
                    }
                }
            }
            shared.snapshot.set_flight(flight.stats());
        }
        // Retire rings whose producer is gone and whose backlog the
        // sweep above fully drained: abandoned + empty can never grow
        // again. Their overflow moves into the retired counter so the
        // footer keeps accounting for every drop.
        if rings.iter().any(|r| r.is_abandoned() && r.is_empty()) {
            shared.rings.lock().unwrap().retain(|r| {
                if r.is_abandoned() && r.is_empty() {
                    shared.retired_overflow.fetch_add(r.overflow(), Ordering::Relaxed);
                    false
                } else {
                    true
                }
            });
        }
        if stopping {
            // One final sweep happened above (stop was read before the
            // sweep), so every event pushed before `finish` is in.
            let overflow = shared.total_overflow();
            shared.snapshot.set_overflow(overflow);
            let events = writer.events_written();
            writer.finish(overflow)?;
            return Ok((events, overflow));
        }
        // Always wait out the interval between sweeps — each sweep
        // empties the rings entirely, so pacing costs nothing, and a
        // free-running loop would eat a whole core under sustained
        // traffic (on a single-core host that starves the very workers
        // being traced). `finish` interrupts the wait via the condvar.
        let guard = shared.wake_lock.lock().unwrap();
        if !shared.stop.load(Ordering::Acquire) {
            drop(shared.wake_cv.wait_timeout(guard, interval));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, RCODE_NONE};
    use crate::trace::Trace;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dnswild-telemetry-{name}-{}.dwt", std::process::id()));
        p
    }

    fn server_event(p: &Producer, i: u32, answered: bool) -> TraceEvent {
        let mut ev = TraceEvent::new(EventKind::ServerQuery);
        ev.ts_ns = p.now_ns();
        ev.qname_hash = i;
        ev.latency_ns = 1_000 + i;
        ev.flags = if answered { FLAG_RESPONSE } else { 0 };
        ev.rcode = if answered { 0 } else { RCODE_NONE };
        ev
    }

    #[test]
    fn collects_from_multiple_producers_into_one_trace() {
        let path = temp_path("multi");
        let collector =
            Collector::start(CollectorConfig::new(&path).auths(["FRA", "GRU"])).unwrap();
        let threads: Vec<_> = (0..3)
            .map(|t| {
                let p = collector.producer();
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        assert!(p.record(&server_event(&p, t * 1000 + i, i % 4 != 0)));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let summary = collector.finish().unwrap();
        assert_eq!(summary.events, 1500);
        assert_eq!(summary.overflow, 0);
        let trace = Trace::read_from(&path).unwrap();
        assert_eq!(trace.events.len(), 1500);
        assert_eq!(trace.overflow, 0);
        assert_eq!(trace.auths, vec!["FRA", "GRU"]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_counters_and_histogram_track_events() {
        let path = temp_path("snap");
        let collector = Collector::start(CollectorConfig::new(&path).auths(["FRA"])).unwrap();
        let cell = collector.snapshot_cell();
        let p = collector.producer();
        for i in 0..100u32 {
            p.record(&server_event(&p, i, i < 90));
        }
        let mut bad = TraceEvent::new(EventKind::ServerBad);
        bad.flags = FLAG_DECODE_ERROR;
        p.record(&bad);
        // Wait for the drain thread to catch up, then check the cell.
        let deadline = Instant::now() + Duration::from_secs(5);
        while cell.snapshot().events < 101 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        let snap = cell.snapshot();
        assert_eq!(snap.events, 101);
        assert_eq!(snap.queries, 100);
        assert_eq!(snap.answered, 90);
        assert_eq!(snap.decode_errors, 1);
        assert!(collector.latency_ns_at(50.0).is_some());
        let summary = collector.finish().unwrap();
        assert_eq!(summary.events, 101);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overflow_is_counted_and_lands_in_the_footer() {
        let path = temp_path("overflow");
        // Long drain interval + tiny ring: pushes outrun the drain.
        let config = CollectorConfig::new(&path)
            .auths(["FRA"])
            .ring_capacity(8)
            .drain_interval(Duration::from_secs(3600));
        let collector = Collector::start(config).unwrap();
        let p = collector.producer();
        let mut dropped = 0;
        for i in 0..64u32 {
            if !p.record(&server_event(&p, i, true)) {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "tiny ring never overflowed");
        let summary = collector.finish().unwrap();
        assert_eq!(summary.events + summary.overflow, 64);
        let trace = Trace::read_from(&path).unwrap();
        assert_eq!(trace.overflow, summary.overflow);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dropped_producers_retire_their_rings_but_keep_their_overflow() {
        let path = temp_path("retire");
        let config = CollectorConfig::new(&path)
            .auths(["FRA"])
            .ring_capacity(8)
            .drain_interval(Duration::from_millis(100));
        let collector = Collector::start(config).unwrap();
        {
            let p = collector.producer();
            assert_eq!(collector.ring_count(), 1);
            for i in 0..64u32 {
                // Some of these overflow the 8-slot ring; the retired
                // ring's drop count must still reach the footer.
                p.record(&server_event(&p, i, true));
            }
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while collector.ring_count() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(collector.ring_count(), 0, "abandoned ring never retired");
        let summary = collector.finish().unwrap();
        assert_eq!(summary.events + summary.overflow, 64, "retired overflow lost");
        let trace = Trace::read_from(&path).unwrap();
        assert_eq!(trace.overflow, summary.overflow);
        assert_eq!(trace.events.len() as u64, summary.events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn finish_twice_errors() {
        let path = temp_path("twice");
        let collector = Collector::start(CollectorConfig::new(&path)).unwrap();
        collector.finish().unwrap();
        assert!(collector.finish().is_err());
        std::fs::remove_file(&path).ok();
    }
}
