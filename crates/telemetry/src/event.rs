//! The fixed-size trace event: 40 bytes, encoded as five `u64` words so
//! the SPSC ring can move it with plain atomic stores.
//!
//! Word layout (all little-endian in the trace file):
//!
//! | word | bits 0..31        | bits 32..63            |
//! |------|-------------------|------------------------|
//! | 0    | `ts_ns` (low)     | `ts_ns` (high)         |
//! | 1    | `client_hash` lo  | `client_hash` hi       |
//! | 2    | `qname_hash`      | `latency_ns`           |
//! | 3    | `auth_id`+`bytes_in` | `bytes_out`+`flags` |
//! | 4    | `kind`+`rcode`+zeros | reserved (zero)     |
//!
//! The reserved bytes must be zero in format version 1; readers reject
//! anything else so a future version can reuse them.

use std::net::SocketAddr;

use detrand::splitmix64;

/// Response datagram was sent (server) / an answer arrived (client).
pub const FLAG_RESPONSE: u16 = 1 << 0;
/// The inbound datagram failed to decode (FORMERR salvage or drop).
pub const FLAG_DECODE_ERROR: u16 = 1 << 1;
/// Client-side: the transaction window expired with no usable answer.
pub const FLAG_TIMEOUT: u16 = 1 << 2;
/// The datagram travelled over TCP rather than UDP.
pub const FLAG_TCP: u16 = 1 << 3;
/// Chaos proxy: the datagram was dropped (no deliveries).
pub const FLAG_CHAOS_DROP: u16 = 1 << 4;
/// Chaos proxy: the datagram was duplicated.
pub const FLAG_CHAOS_DUP: u16 = 1 << 5;
/// Chaos proxy: payload bytes were flipped.
pub const FLAG_CHAOS_CORRUPT: u16 = 1 << 6;
/// Chaos proxy: the payload was truncated.
pub const FLAG_CHAOS_TRUNCATE: u16 = 1 << 7;
/// Chaos proxy: held past the profile's delay ceiling (reorder draw).
pub const FLAG_CHAOS_REORDER: u16 = 1 << 8;
/// Chaos proxy: delivery was delayed.
pub const FLAG_CHAOS_DELAY: u16 = 1 << 9;
/// Server-side: the engine produced a response but the socket refused
/// to send it (`send_to`/`sendmmsg` failure). `bytes_out` is zero on
/// such events so trace byte accounting matches what actually hit the
/// wire.
pub const FLAG_SEND_FAILED: u16 = 1 << 10;
/// Client-side: the attempt window closed on a TC=1 answer (the UDP
/// reply was truncated and unusable).
pub const FLAG_TC_SEEN: u16 = 1 << 11;
/// Client-side: the transaction was retried over TCP after truncation
/// ([`FLAG_TCP`] is additionally set iff that retry produced the
/// answer).
pub const FLAG_TCP_RETRY: u16 = 1 << 12;

/// Sentinel for "no rcode recorded" (wire rcodes are 4 bits).
pub const RCODE_NONE: u8 = 0xff;

/// What produced the event. Stored as one byte; unknown values are
/// preserved so older readers can skip events from newer writers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Server worker handled a well-formed query (counted in
    /// `ServerStats::queries`). The per-auth closure gate counts these.
    ServerQuery,
    /// Server worker handled a datagram that did not become a query
    /// (NOTIMP, FORMERR salvage, or a dropped datagram).
    ServerBad,
    /// Load-generator or resolver-client attempt completed (answer,
    /// timeout, or doomed classification).
    ClientQuery,
    /// Chaos proxy carried a client→server datagram.
    ChaosForward,
    /// Chaos proxy carried a server→client datagram.
    ChaosReverse,
    /// Unrecognised kind byte from a newer writer.
    Unknown(u8),
}

impl EventKind {
    pub fn to_u8(self) -> u8 {
        match self {
            EventKind::ServerQuery => 0,
            EventKind::ServerBad => 1,
            EventKind::ClientQuery => 2,
            EventKind::ChaosForward => 3,
            EventKind::ChaosReverse => 4,
            EventKind::Unknown(v) => v,
        }
    }

    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => EventKind::ServerQuery,
            1 => EventKind::ServerBad,
            2 => EventKind::ClientQuery,
            3 => EventKind::ChaosForward,
            4 => EventKind::ChaosReverse,
            other => EventKind::Unknown(other),
        }
    }
}

/// One captured datagram. 40 bytes on the wire (five `u64` words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the collector's epoch (its start instant).
    pub ts_ns: u64,
    /// Hash of the peer address (server events) or a stable per-client
    /// token (client events). Groups events into per-client streams for
    /// the rank-profile analysis without storing addresses.
    pub client_hash: u64,
    /// 32-bit hash of the canonical qname wire form (or of the raw
    /// payload for chaos events). Identifies the query name without
    /// storing labels.
    pub qname_hash: u32,
    /// Service time (server), RTT (client), or 0 (chaos). Saturates.
    pub latency_ns: u32,
    /// Index into the trace's authoritative table (0 when unmapped).
    pub auth_id: u16,
    /// Inbound datagram size, saturated to u16.
    pub bytes_in: u16,
    /// Outbound datagram size (sum over deliveries for chaos), saturated.
    pub bytes_out: u16,
    /// `FLAG_*` bits.
    pub flags: u16,
    pub kind: EventKind,
    /// Wire rcode of the response, or [`RCODE_NONE`].
    pub rcode: u8,
}

impl TraceEvent {
    /// A zeroed event with the given kind — fill in what applies.
    pub fn new(kind: EventKind) -> Self {
        TraceEvent {
            ts_ns: 0,
            client_hash: 0,
            qname_hash: 0,
            latency_ns: 0,
            auth_id: 0,
            bytes_in: 0,
            bytes_out: 0,
            flags: 0,
            kind,
            rcode: RCODE_NONE,
        }
    }

    pub fn encode_words(&self) -> [u64; 5] {
        [
            self.ts_ns,
            self.client_hash,
            u64::from(self.qname_hash) | u64::from(self.latency_ns) << 32,
            u64::from(self.auth_id)
                | u64::from(self.bytes_in) << 16
                | u64::from(self.bytes_out) << 32
                | u64::from(self.flags) << 48,
            u64::from(self.kind.to_u8()) | u64::from(self.rcode) << 8,
        ]
    }

    pub fn decode_words(w: [u64; 5]) -> Self {
        TraceEvent {
            ts_ns: w[0],
            client_hash: w[1],
            qname_hash: w[2] as u32,
            latency_ns: (w[2] >> 32) as u32,
            auth_id: w[3] as u16,
            bytes_in: (w[3] >> 16) as u16,
            bytes_out: (w[3] >> 32) as u16,
            flags: (w[3] >> 48) as u16,
            kind: EventKind::from_u8(w[4] as u8),
            rcode: (w[4] >> 8) as u8,
        }
    }

    /// Hash of the fields that are deterministic under a fixed seed.
    /// Timestamps, latencies, and client hashes (which embed ephemeral
    /// ports) are excluded so same-seed runs agree; see
    /// [`crate::Trace::digest`] for how order-insensitivity is layered
    /// on top.
    pub fn content_key(&self) -> u64 {
        let mut h = 0xd1f1_0017_u64; // DITL-2017, the paper's trace vintage
        h = splitmix64(h ^ u64::from(self.qname_hash));
        h = splitmix64(h ^ u64::from(self.auth_id));
        h = splitmix64(h ^ u64::from(self.kind.to_u8()));
        h = splitmix64(h ^ u64::from(self.rcode));
        h = splitmix64(h ^ u64::from(self.bytes_in));
        h = splitmix64(h ^ u64::from(self.bytes_out));
        h = splitmix64(h ^ u64::from(self.flags));
        h
    }
}

/// Fold a byte string into a `splitmix64` chain — the same idiom the
/// chaos plane uses to key fault decisions off datagram bytes.
pub fn hash_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    h = splitmix64(h ^ (bytes.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    h
}

/// Hash a canonical qname wire form (`Name::canonical_wire()`) into the
/// event's 32-bit qname id. One seed, used by every plane, so server
/// and client events for the same name agree on the id.
pub fn qname_hash32(canonical_wire: &[u8]) -> u32 {
    hash_bytes(0x0071_6e61_6d65, canonical_wire) as u32
}

/// Hash a socket address (IP bytes + port) into a client token. The
/// port makes loopback clients distinguishable; it also makes the value
/// non-deterministic across runs, which is why `content_key` skips it.
pub fn hash_socket_addr(addr: &SocketAddr) -> u64 {
    let h = match addr.ip() {
        std::net::IpAddr::V4(ip) => hash_bytes(0x4164_6472, &ip.octets()),
        std::net::IpAddr::V6(ip) => hash_bytes(0x4164_6472, &ip.octets()),
    };
    splitmix64(h ^ u64::from(addr.port()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            ts_ns: 123_456_789_012,
            client_hash: 0xdead_beef_cafe_f00d,
            qname_hash: 0x1234_5678,
            latency_ns: 42_000,
            auth_id: 7,
            bytes_in: 33,
            bytes_out: 512,
            flags: FLAG_RESPONSE | FLAG_CHAOS_DELAY,
            kind: EventKind::ServerQuery,
            rcode: 3,
        }
    }

    #[test]
    fn words_round_trip() {
        let ev = sample();
        assert_eq!(TraceEvent::decode_words(ev.encode_words()), ev);
        // All kinds and the sentinel rcode survive.
        for k in 0..=6u8 {
            let mut e = TraceEvent::new(EventKind::from_u8(k));
            e.rcode = RCODE_NONE;
            assert_eq!(TraceEvent::decode_words(e.encode_words()), e);
        }
    }

    #[test]
    fn content_key_ignores_timing_and_client() {
        let a = sample();
        let mut b = a;
        b.ts_ns = 1;
        b.latency_ns = 9;
        b.client_hash = 2;
        assert_eq!(a.content_key(), b.content_key());
        let mut c = a;
        c.rcode = 0;
        assert_ne!(a.content_key(), c.content_key());
        let mut d = a;
        d.flags ^= FLAG_TIMEOUT;
        assert_ne!(a.content_key(), d.content_key());
    }

    #[test]
    fn socket_addr_hash_distinguishes_ports() {
        let a: SocketAddr = "127.0.0.1:5300".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:5301".parse().unwrap();
        assert_ne!(hash_socket_addr(&a), hash_socket_addr(&b));
        assert_eq!(hash_socket_addr(&a), hash_socket_addr(&a));
    }
}
