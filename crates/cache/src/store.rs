//! The cache proper: a bounded, TTL-respecting record store with
//! negative caching, prefetch marking, and serve-stale.

use std::collections::{HashMap, VecDeque};

use dnswild_proto::{Name, RType, Rcode, Record};

use crate::clock::{CacheTime, Secs};

/// TTL stamped on answers served stale (RFC 8767 §4 caps the advertised
/// lifetime of stale data at 30 seconds).
pub const STALE_TTL: u32 = 30;

/// Cache key: question name and type (class is always IN here).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    qname: Name,
    qtype: RType,
}

/// What kind of response an entry memoizes. RFC 2308 keeps the two
/// negative shapes distinct: NXDOMAIN denies the *name*, NODATA denies
/// only the *type* — a cache that conflates them answers wrongly for
/// sibling types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A positive answer with records.
    Positive,
    /// NOERROR with an empty answer section (the type doesn't exist).
    NoData,
    /// NXDOMAIN (the name doesn't exist).
    NxDomain,
}

/// A stored response.
#[derive(Debug, Clone)]
struct Entry {
    answers: Vec<Record>,
    rcode: Rcode,
    kind: EntryKind,
    expires: CacheTime,
    /// LRU stamp: the tick of the most recent use (see `queue`).
    stamp: u64,
    /// Live hits since (re-)insertion — the popularity signal prefetch
    /// keys on.
    hits: u64,
    /// One-shot latch so a hot entry triggers at most one prefetch per
    /// lifetime; reset by the refreshing insert.
    prefetch_fired: bool,
}

/// What a cache lookup yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResponse {
    /// Answer records with TTLs decremented to the remaining lifetime
    /// (floored at 1s — a live entry never emits TTL=0).
    pub answers: Vec<Record>,
    /// The cached response code (NOERROR or NXDOMAIN).
    pub rcode: Rcode,
    /// Positive / NODATA / NXDOMAIN.
    pub kind: EntryKind,
    /// True when this hit is hot and close enough to expiry that the
    /// caller should refresh it in the background.
    pub prefetch_due: bool,
    /// True when served past expiry under RFC 8767 (only from
    /// [`RecordCache::get_stale`]).
    pub stale: bool,
}

/// Statistics for cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing usable (includes `expired`).
    pub misses: u64,
    /// Entries stored.
    pub inserts: u64,
    /// Misses that found an entry past its TTL (subset of `misses`).
    pub expired: u64,
    /// Live hits on negative entries (subset of `hits`).
    pub negative_hits: u64,
    /// Entries pushed out by the capacity bound.
    pub evictions: u64,
    /// Expired entries served anyway under serve-stale.
    pub stale_served: u64,
}

/// Knobs; the default configuration reproduces the original sim-plane
/// cache exactly (unbounded, no prefetch, expired entries dropped on
/// probe), so the simulator's outputs are bit-stable across the
/// unification.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum live entries; 0 means unbounded.
    pub capacity: usize,
    /// Prefetch when a hot entry's remaining life is at most this many
    /// seconds; 0 disables prefetch marking.
    pub prefetch_window_s: u32,
    /// Hits an entry needs before it counts as hot.
    pub prefetch_min_hits: u64,
    /// How long past expiry an entry stays servable stale; 0 disables
    /// serve-stale (expired entries are removed on probe).
    pub max_stale_s: u32,
    /// Maximum stale answers this cache will ever serve.
    pub stale_budget: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 0,
            prefetch_window_s: 0,
            prefetch_min_hits: 1,
            max_stale_s: 0,
            stale_budget: u64::MAX,
        }
    }
}

/// A TTL-respecting record cache; see the crate docs for the plane split.
#[derive(Debug, Default)]
pub struct RecordCache {
    entries: HashMap<CacheKey, Entry>,
    /// Lazy LRU order: every use pushes `(tick, key)`; eviction pops from
    /// the front, skipping records whose tick no longer matches the
    /// entry's current stamp. O(1) amortized, no linked list.
    queue: VecDeque<(u64, CacheKey)>,
    tick: u64,
    cfg: CacheConfig,
    stats: CacheStats,
}

impl RecordCache {
    /// An empty cache with sim-compatible defaults (see [`CacheConfig`]).
    pub fn new() -> Self {
        RecordCache::default()
    }

    /// An empty cache with explicit knobs.
    pub fn with_config(cfg: CacheConfig) -> Self {
        RecordCache { cfg, ..RecordCache::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn touch(&mut self, key: &CacheKey) -> u64 {
        self.tick += 1;
        self.queue.push_back((self.tick, key.clone()));
        // The queue holds one record per *use*, not per entry; compact
        // once the dead weight dominates so unbounded caches with hot
        // entries don't grow it forever.
        if self.queue.len() > 2 * self.entries.len() + 64 {
            let entries = &self.entries;
            self.queue.retain(|(tick, key)| {
                entries.get(key).is_some_and(|e| e.stamp == *tick)
            });
        }
        self.tick
    }

    fn evict_to_capacity(&mut self) {
        if self.cfg.capacity == 0 {
            return;
        }
        while self.entries.len() > self.cfg.capacity {
            match self.queue.pop_front() {
                Some((tick, key)) => {
                    let live = self.entries.get(&key).is_some_and(|e| e.stamp == tick);
                    if live {
                        self.entries.remove(&key);
                        self.stats.evictions += 1;
                    }
                }
                None => break, // queue exhausted: nothing left to evict
            }
        }
    }

    /// Stores a response. TTL is the minimum across answer records, or
    /// `negative_ttl` when there are none (NODATA/NXDOMAIN — RFC 2308
    /// says that value comes from the SOA minimum, which is the caller's
    /// job to extract). TTL 0 is uncacheable.
    pub fn insert(
        &mut self,
        qname: Name,
        qtype: RType,
        answers: Vec<Record>,
        rcode: Rcode,
        negative_ttl: u32,
        now: CacheTime,
    ) {
        let ttl = answers.iter().map(|r| r.ttl).min().unwrap_or(negative_ttl);
        if ttl == 0 {
            return; // uncacheable
        }
        let kind = if rcode == Rcode::NxDomain {
            EntryKind::NxDomain
        } else if answers.is_empty() {
            EntryKind::NoData
        } else {
            EntryKind::Positive
        };
        self.stats.inserts += 1;
        let key = CacheKey { qname, qtype };
        let stamp = self.touch(&key);
        self.entries.insert(
            key,
            Entry {
                answers,
                rcode,
                kind,
                expires: now + Secs(ttl as u64),
                stamp,
                hits: 0,
                prefetch_fired: false,
            },
        );
        self.evict_to_capacity();
    }

    /// Looks a question up; live entries get their TTLs adjusted to the
    /// remaining lifetime, as a real cache serves them. Expiry is
    /// exclusive: an entry is dead *at* its expiry instant.
    pub fn get(&mut self, qname: &Name, qtype: RType, now: CacheTime) -> Option<CachedResponse> {
        let key = CacheKey { qname: qname.clone(), qtype };
        let cfg = self.cfg;
        match self.entries.get_mut(&key) {
            Some(e) if e.expires > now => {
                self.stats.hits += 1;
                if e.kind != EntryKind::Positive {
                    self.stats.negative_hits += 1;
                }
                e.hits += 1;
                // Floor at 1: a record with sub-second life left is still
                // live (exclusive expiry), and TTL=0 on the wire would
                // tell downstream "do not cache" — the opposite of truth.
                let remaining = e.expires.secs_since(now).max(1) as u32;
                let prefetch_due = cfg.prefetch_window_s > 0
                    && !e.prefetch_fired
                    && e.hits >= cfg.prefetch_min_hits
                    && e.expires.micros_since(now) <= cfg.prefetch_window_s as u64 * 1_000_000;
                if prefetch_due {
                    e.prefetch_fired = true;
                }
                let answers = e
                    .answers
                    .iter()
                    .map(|r| {
                        let mut r = r.clone();
                        r.ttl = r.ttl.min(remaining);
                        r
                    })
                    .collect();
                let out = CachedResponse {
                    answers,
                    rcode: e.rcode,
                    kind: e.kind,
                    prefetch_due,
                    stale: false,
                };
                self.touch(&key);
                let stamp = self.tick;
                if let Some(e) = self.entries.get_mut(&key) {
                    e.stamp = stamp;
                }
                Some(out)
            }
            Some(_) => {
                self.stats.misses += 1;
                self.stats.expired += 1;
                if cfg.max_stale_s == 0 {
                    self.entries.remove(&key);
                } // else: retained for get_stale
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Serves an *expired* entry under RFC 8767, if it is within the
    /// `max_stale_s` window and the stale-answer budget has room.
    /// Answers carry [`STALE_TTL`]. Callers reach for this only after
    /// every authoritative has failed them.
    pub fn get_stale(
        &mut self,
        qname: &Name,
        qtype: RType,
        now: CacheTime,
    ) -> Option<CachedResponse> {
        if self.cfg.max_stale_s == 0 || self.stats.stale_served >= self.cfg.stale_budget {
            return None;
        }
        let key = CacheKey { qname: qname.clone(), qtype };
        let max_stale_us = self.cfg.max_stale_s as u64 * 1_000_000;
        let e = self.entries.get(&key)?;
        if e.expires > now || now.micros_since(e.expires) > max_stale_us {
            return None; // still live (use `get`) or too stale to trust
        }
        self.stats.stale_served += 1;
        let answers = e
            .answers
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.ttl = STALE_TTL;
                r
            })
            .collect();
        let out = CachedResponse {
            answers,
            rcode: e.rcode,
            kind: e.kind,
            prefetch_due: false,
            stale: true,
        };
        let stamp = self.touch(&key);
        if let Some(e) = self.entries.get_mut(&key) {
            e.stamp = stamp;
        }
        Some(out)
    }

    /// Drops everything (the "cold cache" the paper enforces with 4-hour
    /// breaks between measurements). Statistics survive.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.queue.clear();
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entry count (expired entries may linger until probed, or until
    /// their serve-stale window passes under eviction pressure).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswild_proto::rdata::Txt;
    use dnswild_proto::RData;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn txt_record(owner: &str, ttl: u32) -> Record {
        Record::new(name(owner), ttl, RData::Txt(Txt::from_string("x").unwrap()))
    }

    fn t(secs: u64) -> CacheTime {
        CacheTime::ZERO + Secs(secs)
    }

    fn us(micros: u64) -> CacheTime {
        CacheTime::from_micros(micros)
    }

    // ---- ported sim-plane suite (behaviour must not drift) ----

    #[test]
    fn hit_within_ttl() {
        let mut c = RecordCache::new();
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 5)], Rcode::NoError, 300, t(0));
        let hit = c.get(&name("a.nl"), RType::Txt, t(4)).unwrap();
        assert_eq!(hit.rcode, Rcode::NoError);
        assert_eq!(hit.answers[0].ttl, 1, "ttl decremented to remaining");
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn miss_after_ttl() {
        let mut c = RecordCache::new();
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 5)], Rcode::NoError, 300, t(0));
        assert!(c.get(&name("a.nl"), RType::Txt, t(5)).is_none());
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().expired, 1);
        assert!(c.is_empty(), "expired entry evicted when serve-stale is off");
    }

    #[test]
    fn negative_entries_cached_with_negative_ttl() {
        let mut c = RecordCache::new();
        c.insert(name("nx.nl"), RType::A, vec![], Rcode::NxDomain, 60, t(0));
        let hit = c.get(&name("nx.nl"), RType::A, t(59)).unwrap();
        assert_eq!(hit.rcode, Rcode::NxDomain);
        assert!(c.get(&name("nx.nl"), RType::A, t(61)).is_none());
    }

    #[test]
    fn zero_ttl_not_cached() {
        let mut c = RecordCache::new();
        c.insert(name("z.nl"), RType::Txt, vec![txt_record("z.nl", 0)], Rcode::NoError, 300, t(0));
        assert!(c.get(&name("z.nl"), RType::Txt, t(0)).is_none());
        assert_eq!(c.stats().inserts, 0);
    }

    #[test]
    fn distinct_types_are_distinct_entries() {
        let mut c = RecordCache::new();
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 60)], Rcode::NoError, 300, t(0));
        assert!(c.get(&name("a.nl"), RType::A, t(1)).is_none());
        assert!(c.get(&name("a.nl"), RType::Txt, t(1)).is_some());
    }

    #[test]
    fn unique_labels_never_hit() {
        // The paper's methodology in miniature.
        let mut c = RecordCache::new();
        for i in 0..10 {
            let qname = name(&format!("probe-{i}.test.nl"));
            assert!(c.get(&qname, RType::Txt, t(i)).is_none());
            c.insert(qname, RType::Txt, vec![txt_record("x.nl", 5)], Rcode::NoError, 300, t(i));
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 10);
    }

    #[test]
    fn clear_empties() {
        let mut c = RecordCache::new();
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 60)], Rcode::NoError, 300, t(0));
        c.clear();
        assert!(c.is_empty());
    }

    // ---- satellite pins: TTL floor and exclusive expiry boundary ----

    #[test]
    fn ttl_floors_at_one_second_on_reads() {
        let mut c = RecordCache::new();
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 5)], Rcode::NoError, 300, t(0));
        // 4.999999s in: remaining truncates to 0 whole seconds, but the
        // entry is live — a live entry must never emit TTL=0.
        let hit = c.get(&name("a.nl"), RType::Txt, us(4_999_999)).unwrap();
        assert_eq!(hit.answers[0].ttl, 1, "sub-second remainder floors to 1, not 0");
    }

    #[test]
    fn expiry_is_exclusive_at_the_boundary() {
        let mut c = RecordCache::new();
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 5)], Rcode::NoError, 300, t(0));
        // One microsecond before expiry: still live.
        assert!(c.get(&name("a.nl"), RType::Txt, us(4_999_999)).is_some());
        // Exactly at expiry: dead. (`expires > now` — strict.)
        assert!(c.get(&name("a.nl"), RType::Txt, us(5_000_000)).is_none());
    }

    // ---- RFC 2308: NXDOMAIN vs NODATA ----

    #[test]
    fn nxdomain_and_nodata_stay_distinct() {
        let mut c = RecordCache::new();
        c.insert(name("gone.nl"), RType::A, vec![], Rcode::NxDomain, 60, t(0));
        c.insert(name("txt-only.nl"), RType::A, vec![], Rcode::NoError, 60, t(0));
        let nx = c.get(&name("gone.nl"), RType::A, t(1)).unwrap();
        let nodata = c.get(&name("txt-only.nl"), RType::A, t(1)).unwrap();
        assert_eq!(nx.kind, EntryKind::NxDomain);
        assert_eq!(nx.rcode, Rcode::NxDomain);
        assert_eq!(nodata.kind, EntryKind::NoData);
        assert_eq!(nodata.rcode, Rcode::NoError, "NODATA is NOERROR + empty, not NXDOMAIN");
        assert_eq!(c.stats().negative_hits, 2);
    }

    // ---- bounded LRU ----

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = RecordCache::with_config(CacheConfig { capacity: 2, ..Default::default() });
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 60)], Rcode::NoError, 300, t(0));
        c.insert(name("b.nl"), RType::Txt, vec![txt_record("b.nl", 60)], Rcode::NoError, 300, t(1));
        // Touch a so b becomes the LRU victim.
        assert!(c.get(&name("a.nl"), RType::Txt, t(2)).is_some());
        c.insert(name("c.nl"), RType::Txt, vec![txt_record("c.nl", 60)], Rcode::NoError, 300, t(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(&name("b.nl"), RType::Txt, t(4)).is_none(), "b was evicted");
        assert!(c.get(&name("a.nl"), RType::Txt, t(4)).is_some(), "recently used a survives");
        assert!(c.get(&name("c.nl"), RType::Txt, t(4)).is_some());
    }

    #[test]
    fn queue_compaction_keeps_lru_order() {
        let mut c = RecordCache::with_config(CacheConfig { capacity: 2, ..Default::default() });
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 600)], Rcode::NoError, 300, t(0));
        c.insert(name("b.nl"), RType::Txt, vec![txt_record("b.nl", 600)], Rcode::NoError, 300, t(0));
        // Hammer one entry far past the compaction threshold.
        for i in 0..500 {
            assert!(c.get(&name("a.nl"), RType::Txt, t(1 + i % 2)).is_some());
        }
        c.insert(name("c.nl"), RType::Txt, vec![txt_record("c.nl", 600)], Rcode::NoError, 300, t(2));
        assert!(c.get(&name("b.nl"), RType::Txt, t(3)).is_none(), "cold b evicted, not hot a");
        assert!(c.get(&name("a.nl"), RType::Txt, t(3)).is_some());
    }

    // ---- RFC 8767 serve-stale ----

    fn stale_cfg(max_stale_s: u32, budget: u64) -> CacheConfig {
        CacheConfig { max_stale_s, stale_budget: budget, ..Default::default() }
    }

    #[test]
    fn stale_entries_served_within_window_under_budget() {
        let mut c = RecordCache::with_config(stale_cfg(60, 1));
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 5)], Rcode::NoError, 300, t(0));
        // Expired probe misses but retains the entry.
        assert!(c.get(&name("a.nl"), RType::Txt, t(10)).is_none());
        assert_eq!(c.len(), 1, "expired entry retained while serve-stale is on");
        let stale = c.get_stale(&name("a.nl"), RType::Txt, t(10)).unwrap();
        assert!(stale.stale);
        assert_eq!(stale.answers[0].ttl, STALE_TTL);
        assert_eq!(c.stats().stale_served, 1);
        // Budget of 1 is now spent.
        assert!(c.get_stale(&name("a.nl"), RType::Txt, t(11)).is_none());
    }

    #[test]
    fn stale_window_and_liveness_are_enforced() {
        let mut c = RecordCache::with_config(stale_cfg(60, u64::MAX));
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 5)], Rcode::NoError, 300, t(0));
        // Still live: get_stale refuses (the live path owns it).
        assert!(c.get_stale(&name("a.nl"), RType::Txt, t(3)).is_none());
        // Past expiry + max_stale: too old to trust.
        assert!(c.get_stale(&name("a.nl"), RType::Txt, t(5 + 61)).is_none());
        // Inside the window: served.
        assert!(c.get_stale(&name("a.nl"), RType::Txt, t(5 + 60)).is_some());
    }

    #[test]
    fn stale_negative_answers_keep_their_rcode() {
        let mut c = RecordCache::with_config(stale_cfg(600, u64::MAX));
        c.insert(name("nx.nl"), RType::A, vec![], Rcode::NxDomain, 5, t(0));
        assert!(c.get(&name("nx.nl"), RType::A, t(6)).is_none());
        let stale = c.get_stale(&name("nx.nl"), RType::A, t(6)).unwrap();
        assert_eq!(stale.rcode, Rcode::NxDomain);
        assert_eq!(stale.kind, EntryKind::NxDomain);
    }

    // ---- popularity-driven prefetch ----

    #[test]
    fn prefetch_marks_hot_entries_near_expiry_once() {
        let cfg = CacheConfig { prefetch_window_s: 2, prefetch_min_hits: 2, ..Default::default() };
        let mut c = RecordCache::with_config(cfg);
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 10)], Rcode::NoError, 300, t(0));
        // Hot but not near expiry: no prefetch.
        assert!(!c.get(&name("a.nl"), RType::Txt, t(1)).unwrap().prefetch_due);
        assert!(!c.get(&name("a.nl"), RType::Txt, t(2)).unwrap().prefetch_due);
        // Near expiry (remaining <= 2s) and past the hit threshold: due.
        assert!(c.get(&name("a.nl"), RType::Txt, t(8)).unwrap().prefetch_due);
        // The latch keeps a hot entry from re-triggering every hit.
        assert!(!c.get(&name("a.nl"), RType::Txt, t(9)).unwrap().prefetch_due);
        // A refreshing insert re-arms it.
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 10)], Rcode::NoError, 300, t(9));
        assert!(!c.get(&name("a.nl"), RType::Txt, t(10)).unwrap().prefetch_due);
        assert!(c.get(&name("a.nl"), RType::Txt, t(17)).unwrap().prefetch_due);
    }

    #[test]
    fn cold_entries_never_prefetch() {
        let cfg = CacheConfig { prefetch_window_s: 2, prefetch_min_hits: 5, ..Default::default() };
        let mut c = RecordCache::with_config(cfg);
        c.insert(name("a.nl"), RType::Txt, vec![txt_record("a.nl", 10)], Rcode::NoError, 300, t(0));
        // One hit near expiry is below the popularity threshold.
        assert!(!c.get(&name("a.nl"), RType::Txt, t(9)).unwrap().prefetch_due);
    }
}
