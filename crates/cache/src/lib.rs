//! The record cache, generalized over its clock.
//!
//! The paper goes out of its way to defeat caching (unique labels, TTL=5,
//! 4-hour gaps between runs) so that every probe actually reaches an
//! authoritative — which is only meaningful if a cache exists to be cold.
//! This crate is that cache, shared by two planes:
//!
//! * the **simulator** drives it with `SimTime` converted to [`CacheTime`]
//!   (deterministic virtual micros), and
//! * the **real-socket client** drives it with a [`WallClock`] anchored at
//!   process start.
//!
//! Time never comes from inside the cache: every method takes an explicit
//! `now`, so behaviour is a pure function of the call sequence and both
//! planes exercise the exact same expiry/decrement/eviction logic.
//!
//! Beyond plain TTL honoring it implements the recursive-side mechanics
//! the paper's measured resolvers exhibit: RFC 2308 negative caching
//! (NXDOMAIN and NODATA kept distinct, TTL from the SOA minimum),
//! popularity-driven prefetch shortly before expiry, RFC 8767 serve-stale
//! under a stale-answer budget, and a bounded LRU with eviction
//! accounting.

mod clock;
mod store;

pub use clock::{CacheTime, Clock, FixedClock, Secs, WallClock};
pub use store::{CacheConfig, CacheStats, CachedResponse, EntryKind, RecordCache, STALE_TTL};
