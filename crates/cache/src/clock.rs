//! Cache time: a plane-neutral microsecond instant.
//!
//! The simulator's `SimTime` and the real-socket plane's `Instant` both
//! lower to this newtype, so the cache itself never needs to know which
//! plane is driving it.

use std::ops::Add;
use std::time::Instant;

/// An instant on the cache's timeline, in microseconds since an arbitrary
/// epoch (simulation start, or [`WallClock`] construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheTime(u64);

impl CacheTime {
    /// The epoch itself.
    pub const ZERO: CacheTime = CacheTime(0);

    /// An instant `micros` microseconds past the epoch.
    pub fn from_micros(micros: u64) -> Self {
        CacheTime(micros)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds elapsed since `earlier` (saturating, truncating).
    pub fn secs_since(self, earlier: CacheTime) -> u64 {
        self.0.saturating_sub(earlier.0) / 1_000_000
    }

    /// Microseconds elapsed since `earlier` (saturating).
    pub fn micros_since(self, earlier: CacheTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

/// Seconds are the only duration unit TTLs speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Secs(pub u64);

impl Add<Secs> for CacheTime {
    type Output = CacheTime;
    fn add(self, rhs: Secs) -> CacheTime {
        CacheTime(self.0.saturating_add(rhs.0.saturating_mul(1_000_000)))
    }
}

/// A source of [`CacheTime`] instants.
///
/// The cache's own methods take `now` explicitly; this trait is for the
/// *callers* that need to produce that `now` uniformly (the netio client
/// holds a `WallClock`, tests hold a [`FixedClock`]).
pub trait Clock {
    /// The current instant on this clock's timeline.
    fn now(&self) -> CacheTime;
}

/// Wall-clock time anchored at construction, for the real-socket plane.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock { epoch: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> CacheTime {
        CacheTime(self.epoch.elapsed().as_micros() as u64)
    }
}

/// A clock pinned to a settable instant, for tests and replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedClock(pub CacheTime);

impl Clock for FixedClock {
    fn now(&self) -> CacheTime {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_truncates_and_saturates() {
        let t = CacheTime::from_micros(4_500_000);
        assert_eq!(t.secs_since(CacheTime::ZERO), 4, "truncates toward zero");
        assert_eq!(CacheTime::ZERO.secs_since(t), 0, "saturates backwards");
        assert_eq!((t + Secs(2)).as_micros(), 6_500_000);
    }

    #[test]
    fn wall_clock_is_monotonic_from_zero() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn fixed_clock_reads_back() {
        let clock = FixedClock(CacheTime::from_micros(7));
        assert_eq!(clock.now().as_micros(), 7);
    }
}
