//! # dnswild-proto
//!
//! A from-scratch DNS wire-format implementation (RFC 1034/1035 core,
//! EDNS0 per RFC 6891) used by the *Recursives in the Wild* reproduction.
//!
//! The crate is deliberately transport-agnostic: it encodes and decodes
//! `&[u8]` buffers and knows nothing about sockets or the simulator. It
//! covers exactly the record types the measurement path needs — A, AAAA,
//! NS, SOA, CNAME, PTR, MX, TXT, OPT — and round-trips everything else
//! opaquely.
//!
//! ## Example
//!
//! ```
//! use dnswild_proto::{Message, Name, RType, Rcode, Record, RData, rdata::Txt};
//!
//! // A recursive resolver asks an authoritative for the probe TXT record.
//! let qname = Name::parse("p1.q42.ourtestdomain.nl").unwrap();
//! let query = Message::iterative_query(0x1234, qname.clone(), RType::Txt);
//! let wire = query.encode().unwrap();
//!
//! // The authoritative answers, identifying its site in-band.
//! let query = Message::decode(&wire).unwrap();
//! let mut resp = Message::response_to(&query, Rcode::NoError);
//! resp.header.authoritative = true;
//! resp.answers.push(Record::new(
//!     qname, 5, RData::Txt(Txt::from_string("site=FRA").unwrap()),
//! ));
//! let wire = resp.encode().unwrap();
//! let resp = Message::decode(&wire).unwrap();
//! assert_eq!(resp.answers.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edns;
mod error;
mod header;
mod message;
mod name;
mod question;
pub mod rdata;
mod record;
mod types;
mod wire;

pub use edns::{Edns, EXTENDED_RCODE_BADVERS, MIN_EDNS_PAYLOAD};
pub use error::{ProtoError, ProtoResult};
pub use header::Header;
pub use message::{Message, DEFAULT_EDNS_PAYLOAD};
pub use name::{Label, Name, NameCompressor, MAX_LABEL_LEN, MAX_NAME_LEN};
pub use question::Question;
pub use rdata::RData;
pub use record::Record;
pub use types::{Class, Opcode, RType, Rcode};
pub use wire::{WireReader, WireWriter, MAX_MESSAGE_SIZE};
