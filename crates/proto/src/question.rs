//! The question section entry (RFC 1035 §4.1.2).

use std::fmt;

use crate::error::ProtoResult;
use crate::name::{Name, NameCompressor};
use crate::types::{Class, RType};
use crate::wire::{WireReader, WireWriter};

/// One question: QNAME, QTYPE, QCLASS.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// The name being asked about.
    pub qname: Name,
    /// The record type requested.
    pub qtype: RType,
    /// The class (IN for normal lookups, CH for server identification).
    pub qclass: Class,
}

impl Question {
    /// Creates an Internet-class question.
    pub fn new(qname: Name, qtype: RType) -> Self {
        Question { qname, qtype, qclass: Class::In }
    }

    /// Creates a CHAOS-class question (e.g. `hostname.bind TXT CH`).
    pub fn chaos(qname: Name, qtype: RType) -> Self {
        Question { qname, qtype, qclass: Class::Ch }
    }

    /// Encodes the question.
    pub fn encode(&self, w: &mut WireWriter, c: &mut NameCompressor) -> ProtoResult<()> {
        self.qname.encode(w, c)?;
        w.write_u16(self.qtype.to_u16())?;
        w.write_u16(self.qclass.to_u16())
    }

    /// Decodes a question.
    pub fn decode(r: &mut WireReader<'_>) -> ProtoResult<Self> {
        Ok(Question {
            qname: Name::decode(r)?,
            qtype: RType::from_u16(r.read_u16()?),
            qclass: Class::from_u16(r.read_u16()?),
        })
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.qname, self.qclass, self.qtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let q = Question::new(Name::parse("q1.ourtestdomain.nl").unwrap(), RType::Txt);
        let mut w = WireWriter::new();
        let mut c = NameCompressor::new();
        q.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Question::decode(&mut r).unwrap(), q);
    }

    #[test]
    fn chaos_class() {
        let q = Question::chaos(Name::parse("hostname.bind").unwrap(), RType::Txt);
        assert_eq!(q.qclass, Class::Ch);
        assert_eq!(q.to_string(), "hostname.bind. CH TXT");
    }
}
