//! EDNS(0) negotiation (RFC 6891): a typed view over the OPT
//! pseudo-record.
//!
//! The OPT record overloads the generic record-header fields instead of
//! carrying its payload in RDATA: CLASS holds the requestor's advertised
//! UDP payload size, and TTL packs the upper eight bits of the extended
//! RCODE, the EDNS version, and the DO flag:
//!
//! ```text
//!          +0 (MSB)                        +1 (LSB)
//! TTL:  +--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+
//!    0: |   EXTENDED-RCODE (hi 8)   |      VERSION      |
//!    2: |DO|                  Z (15 bits)               |
//!       +--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+
//! ```
//!
//! [`Edns`] gives those fields names, clamps advertised sizes to the
//! RFC floor, and carries the extended RCODEs (notably BADVERS = 16)
//! that do not fit the header's 4-bit RCODE field.

use crate::rdata::{Opt, RData};
use crate::record::Record;
use crate::types::{Class, RType, Rcode};
use crate::Name;

/// RFC 6891 §6.2.3: a requestor advertising fewer than 512 octets is
/// treated as advertising exactly 512 — the pre-EDNS UDP minimum.
pub const MIN_EDNS_PAYLOAD: u16 = 512;

/// Extended RCODE 16: BADVERS — the responder does not implement the
/// EDNS version the requestor asked for (RFC 6891 §6.1.3).
pub const EXTENDED_RCODE_BADVERS: u16 = 16;

/// A decoded OPT pseudo-record: EDNS fields with their wire names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edns {
    /// Advertised UDP payload size, exactly as carried in CLASS. Use
    /// [`Edns::payload_limit`] for the clamped, usable value.
    pub payload_size: u16,
    /// Upper eight bits of the 12-bit extended RCODE (TTL bits 24..31).
    /// Zero for every base rcode; 1 for BADVERS when the header RCODE
    /// is 0.
    pub extended_rcode_hi: u8,
    /// EDNS version (TTL bits 16..23). This implementation speaks
    /// version 0 and answers anything newer with BADVERS.
    pub version: u8,
    /// The DO bit (TTL bit 15): requestor wants DNSSEC records.
    pub dnssec_ok: bool,
    /// EDNS options carried in the RDATA.
    pub opt: Opt,
}

impl Edns {
    /// A plain version-0 OPT advertising `payload_size`, no options.
    pub fn new(payload_size: u16) -> Self {
        Edns {
            payload_size,
            extended_rcode_hi: 0,
            version: 0,
            dnssec_ok: false,
            opt: Opt::empty(),
        }
    }

    /// Reads the EDNS fields out of an OPT record. Returns `None` for
    /// any other record type.
    pub fn from_record(rec: &Record) -> Option<Self> {
        if rec.rtype() != RType::Opt {
            return None;
        }
        let opt = match &rec.rdata {
            RData::Opt(o) => o.clone(),
            _ => Opt::empty(),
        };
        Some(Edns {
            payload_size: rec.class.to_u16(),
            extended_rcode_hi: (rec.ttl >> 24) as u8,
            version: (rec.ttl >> 16) as u8,
            dnssec_ok: rec.ttl & 0x8000 != 0,
            opt,
        })
    }

    /// Packs the fields back into an OPT record (root name, size in
    /// CLASS, rcode/version/DO in TTL).
    pub fn to_record(&self) -> Record {
        let mut ttl = ((self.extended_rcode_hi as u32) << 24) | ((self.version as u32) << 16);
        if self.dnssec_ok {
            ttl |= 0x8000;
        }
        Record {
            name: Name::root(),
            class: Class::Unknown(self.payload_size),
            ttl,
            rdata: RData::Opt(self.opt.clone()),
        }
    }

    /// The usable UDP payload limit this OPT negotiates: the advertised
    /// size clamped up to [`MIN_EDNS_PAYLOAD`].
    pub fn payload_limit(&self) -> u16 {
        self.payload_size.max(MIN_EDNS_PAYLOAD)
    }

    /// The full 12-bit extended RCODE given the message header's 4-bit
    /// RCODE (RFC 6891 §6.1.3: OPT's high bits prepend the header's).
    pub fn extended_rcode(&self, header_rcode: Rcode) -> u16 {
        ((self.extended_rcode_hi as u16) << 4) | header_rcode.to_u8() as u16
    }

    /// Splits a full extended RCODE: stores the upper eight bits here
    /// and returns the 4-bit remainder for the message header.
    pub fn set_extended_rcode(&mut self, full: u16) -> Rcode {
        self.extended_rcode_hi = (full >> 4) as u8;
        Rcode::from_u8((full & 0x0f) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_record_round_trip() {
        let mut e = Edns::new(4096);
        e.version = 0;
        e.dnssec_ok = true;
        let rec = e.to_record();
        assert_eq!(rec.rtype(), RType::Opt);
        assert_eq!(rec.class.to_u16(), 4096);
        assert_eq!(Edns::from_record(&rec), Some(e));
    }

    #[test]
    fn payload_limit_clamps_up_to_512() {
        assert_eq!(Edns::new(0).payload_limit(), 512);
        assert_eq!(Edns::new(100).payload_limit(), 512);
        assert_eq!(Edns::new(511).payload_limit(), 512);
        assert_eq!(Edns::new(512).payload_limit(), 512);
        assert_eq!(Edns::new(513).payload_limit(), 513);
        assert_eq!(Edns::new(1232).payload_limit(), 1232);
    }

    #[test]
    fn badvers_splits_across_opt_and_header() {
        let mut e = Edns::new(1232);
        let header_rcode = e.set_extended_rcode(EXTENDED_RCODE_BADVERS);
        // 16 = 0b1_0000: upper bits 1 in the OPT, low 4 bits 0 in the
        // header — a pre-EDNS client sees NOERROR, an EDNS client sees
        // BADVERS.
        assert_eq!(e.extended_rcode_hi, 1);
        assert_eq!(header_rcode, Rcode::NoError);
        assert_eq!(e.extended_rcode(header_rcode), EXTENDED_RCODE_BADVERS);
    }

    #[test]
    fn from_record_rejects_non_opt() {
        let rec = Record::new(
            Name::parse("a.example").unwrap(),
            60,
            RData::A(crate::rdata::A::new(std::net::Ipv4Addr::LOCALHOST)),
        );
        assert_eq!(Edns::from_record(&rec), None);
    }
}
