//! Core DNS enumerations: record types, classes, opcodes and rcodes.

use std::fmt;

/// A resource-record TYPE (RFC 1035 §3.2.2 plus later additions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of a zone of authority.
    Soa,
    /// Domain name pointer (reverse mapping).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text strings.
    Txt,
    /// IPv6 host address (RFC 3596).
    Aaaa,
    /// EDNS0 pseudo-RR (RFC 6891).
    Opt,
    /// Any type not otherwise modelled.
    Unknown(u16),
}

impl RType {
    /// Wire value of the type code.
    pub fn to_u16(self) -> u16 {
        match self {
            RType::A => 1,
            RType::Ns => 2,
            RType::Cname => 5,
            RType::Soa => 6,
            RType::Ptr => 12,
            RType::Mx => 15,
            RType::Txt => 16,
            RType::Aaaa => 28,
            RType::Opt => 41,
            RType::Unknown(v) => v,
        }
    }

    /// Maps a wire value to the type, falling back to [`RType::Unknown`].
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RType::A,
            2 => RType::Ns,
            5 => RType::Cname,
            6 => RType::Soa,
            12 => RType::Ptr,
            15 => RType::Mx,
            16 => RType::Txt,
            28 => RType::Aaaa,
            41 => RType::Opt,
            other => RType::Unknown(other),
        }
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RType::A => write!(f, "A"),
            RType::Ns => write!(f, "NS"),
            RType::Cname => write!(f, "CNAME"),
            RType::Soa => write!(f, "SOA"),
            RType::Ptr => write!(f, "PTR"),
            RType::Mx => write!(f, "MX"),
            RType::Txt => write!(f, "TXT"),
            RType::Aaaa => write!(f, "AAAA"),
            RType::Opt => write!(f, "OPT"),
            RType::Unknown(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// A resource-record CLASS.
///
/// `CH` (CHAOS) matters to this system: `hostname.bind TXT CH` is the
/// classic way to identify an anycast site, and the paper explicitly
/// avoids it because CHAOS queries are answered by the recursive itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// The Internet.
    In,
    /// CHAOS, used for server identification.
    Ch,
    /// Any other class.
    Unknown(u16),
}

impl Class {
    /// Wire value of the class code.
    pub fn to_u16(self) -> u16 {
        match self {
            Class::In => 1,
            Class::Ch => 3,
            Class::Unknown(v) => v,
        }
    }

    /// Maps a wire value to the class.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => Class::In,
            3 => Class::Ch,
            other => Class::Unknown(other),
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Class::In => write!(f, "IN"),
            Class::Ch => write!(f, "CH"),
            Class::Unknown(v) => write!(f, "CLASS{v}"),
        }
    }
}

/// Message OPCODE (we only generate QUERY, but parse the rest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Zone change notification (RFC 1996).
    Notify,
    /// Dynamic update (RFC 2136).
    Update,
    /// Any other opcode.
    Unknown(u8),
}

impl Opcode {
    /// Wire value (4 bits).
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(v) => v & 0x0f,
        }
    }

    /// Maps the 4-bit wire value to an opcode.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0f {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }
}

/// Response code (RCODE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist (authoritative only).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused by policy.
    Refused,
    /// Any other rcode.
    Unknown(u8),
}

impl Rcode {
    /// Wire value (4 bits).
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(v) => v & 0x0f,
        }
    }

    /// Maps the 4-bit wire value to an rcode.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Unknown(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Unknown(v) => write!(f, "RCODE{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtype_round_trip() {
        for v in 0..100u16 {
            assert_eq!(RType::from_u16(v).to_u16(), v);
        }
        assert_eq!(RType::from_u16(16), RType::Txt);
        assert_eq!(RType::from_u16(28), RType::Aaaa);
    }

    #[test]
    fn class_round_trip() {
        for v in 0..10u16 {
            assert_eq!(Class::from_u16(v).to_u16(), v);
        }
        assert_eq!(Class::from_u16(3), Class::Ch);
    }

    #[test]
    fn opcode_rcode_round_trip() {
        for v in 0..16u8 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
            assert_eq!(Rcode::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn display_strings() {
        assert_eq!(RType::Txt.to_string(), "TXT");
        assert_eq!(RType::Unknown(99).to_string(), "TYPE99");
        assert_eq!(Class::In.to_string(), "IN");
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
    }
}
