//! Whole DNS messages: sections, encoding, decoding, and convenience
//! constructors for queries and responses.

use crate::edns::Edns;
use crate::error::{ProtoError, ProtoResult};
use crate::header::Header;
use crate::name::{Name, NameCompressor};
use crate::question::Question;
use crate::rdata::{Opt, RData};
use crate::record::Record;
use crate::types::{Class, RType, Rcode};
use crate::wire::{WireReader, WireWriter};

/// Advertised EDNS0 UDP payload size we use in queries.
pub const DEFAULT_EDNS_PAYLOAD: u16 = 1232;

/// A DNS message: header plus the four sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Message header. Section counts are recomputed on encode.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (includes the OPT pseudo-record, if any).
    pub additionals: Vec<Record>,
}

impl Message {
    /// A fresh query for `qname`/`qtype` with recursion desired —
    /// what a stub sends to its recursive resolver.
    pub fn stub_query(id: u16, qname: Name, qtype: RType) -> Self {
        let mut m = Message {
            header: Header { id, recursion_desired: true, ..Header::default() },
            questions: vec![Question::new(qname, qtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        m.add_edns(DEFAULT_EDNS_PAYLOAD);
        m
    }

    /// An iterative (non-RD) query — what a recursive sends to an
    /// authoritative server.
    pub fn iterative_query(id: u16, qname: Name, qtype: RType) -> Self {
        let mut m = Message {
            header: Header { id, recursion_desired: false, ..Header::default() },
            questions: vec![Question::new(qname, qtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        m.add_edns(DEFAULT_EDNS_PAYLOAD);
        m
    }

    /// Starts a response echoing a query's ID and question.
    pub fn response_to(query: &Message, rcode: Rcode) -> Self {
        Message {
            header: Header {
                id: query.header.id,
                response: true,
                opcode: query.header.opcode,
                recursion_desired: query.header.recursion_desired,
                rcode,
                ..Header::default()
            },
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Appends an EDNS0 OPT pseudo-record advertising `payload_size`.
    pub fn add_edns(&mut self, payload_size: u16) {
        self.additionals.push(Record {
            name: Name::root(),
            class: Class::Unknown(payload_size),
            ttl: 0,
            rdata: RData::Opt(Opt::empty()),
        });
    }

    /// Appends a fully specified OPT pseudo-record (extended rcode,
    /// version, DO bit) — what responders emit during negotiation.
    pub fn add_edns_record(&mut self, edns: &Edns) {
        self.additionals.push(edns.to_record());
    }

    /// The OPT pseudo-record, if present.
    pub fn edns(&self) -> Option<&Record> {
        self.additionals.iter().find(|r| r.rtype() == RType::Opt)
    }

    /// The typed EDNS view of the OPT pseudo-record, if present.
    pub fn edns_info(&self) -> Option<Edns> {
        self.edns().and_then(Edns::from_record)
    }

    /// Number of OPT records in the additional section. RFC 6891 §6.1.1
    /// allows exactly one; responders must answer FORMERR to more.
    pub fn opt_count(&self) -> usize {
        self.additionals.iter().filter(|r| r.rtype() == RType::Opt).count()
    }

    /// The EDNS-advertised UDP payload size, if EDNS is present.
    pub fn edns_payload_size(&self) -> Option<u16> {
        self.edns().map(|r| r.class.to_u16())
    }

    /// The full 12-bit extended RCODE: the OPT's upper bits (when EDNS
    /// is present) prepended to the header's 4-bit RCODE.
    pub fn extended_rcode(&self) -> u16 {
        match self.edns_info() {
            Some(e) => e.extended_rcode(self.header.rcode),
            None => self.header.rcode.to_u8() as u16,
        }
    }

    /// The first (usually only) question.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Whether this message is a response.
    pub fn is_response(&self) -> bool {
        self.header.response
    }

    /// The response code.
    pub fn rcode(&self) -> Rcode {
        self.header.rcode
    }

    /// Encodes the message, recomputing all section counts.
    pub fn encode(&self) -> ProtoResult<Vec<u8>> {
        let mut w = WireWriter::new();
        self.encode_to_writer(&mut w)?;
        Ok(w.into_bytes())
    }

    /// Encodes the message into `buf`, reusing its allocation.
    ///
    /// `buf` is cleared first and then holds exactly the wire form on
    /// success (byte-identical to [`Message::encode`]); on error it is
    /// left empty. A buffer recycled across responses makes the serving
    /// hot loop allocation-free once it has grown to the working size.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> ProtoResult<()> {
        let mut w = WireWriter::from_vec(std::mem::take(buf));
        let result = self.encode_to_writer(&mut w);
        *buf = w.into_bytes();
        if result.is_err() {
            buf.clear();
        }
        result
    }

    fn encode_to_writer(&self, w: &mut WireWriter) -> ProtoResult<()> {
        let mut c = NameCompressor::new();
        let header = Header {
            qdcount: self.questions.len() as u16,
            ancount: self.answers.len() as u16,
            nscount: self.authorities.len() as u16,
            arcount: self.additionals.len() as u16,
            ..self.header
        };
        header.encode(w)?;
        for q in &self.questions {
            q.encode(w, &mut c)?;
        }
        for section in [&self.answers, &self.authorities, &self.additionals] {
            for rec in section {
                rec.encode(w, &mut c)?;
            }
        }
        Ok(())
    }

    /// Decodes a message from the wire.
    pub fn decode(buf: &[u8]) -> ProtoResult<Self> {
        let mut r = WireReader::new(buf);
        let header = Header::decode(&mut r)?;
        let mut questions = Vec::with_capacity(header.qdcount as usize);
        for _ in 0..header.qdcount {
            questions.push(Question::decode(&mut r)?);
        }
        let decode_section = |r: &mut WireReader<'_>, n: u16| -> ProtoResult<Vec<Record>> {
            let mut out = Vec::with_capacity(n as usize);
            for _ in 0..n {
                out.push(Record::decode(r)?);
            }
            Ok(out)
        };
        let answers = decode_section(&mut r, header.ancount)?;
        let authorities = decode_section(&mut r, header.nscount)?;
        let additionals = decode_section(&mut r, header.arcount)?;
        if !r.is_empty() {
            return Err(ProtoError::Malformed("trailing bytes after last section"));
        }
        Ok(Message { header, questions, answers, authorities, additionals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::{Ns, Txt, A};
    use crate::types::Opcode;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    /// Compares everything except the section counts, which are only
    /// authoritative after an encode.
    fn assert_same_content(a: &Message, b: &Message) {
        assert_eq!(a.questions, b.questions);
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.authorities, b.authorities);
        assert_eq!(a.additionals, b.additionals);
        let strip = |h: &Header| Header { qdcount: 0, ancount: 0, nscount: 0, arcount: 0, ..*h };
        assert_eq!(strip(&a.header), strip(&b.header));
    }

    #[test]
    fn query_round_trip() {
        let q = Message::stub_query(0x4242, name("p17.ourtestdomain.nl"), RType::Txt);
        let bytes = q.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_same_content(&back, &q);
        assert!(back.header.recursion_desired);
        assert_eq!(back.edns_payload_size(), Some(DEFAULT_EDNS_PAYLOAD));
    }

    #[test]
    fn iterative_query_has_no_rd() {
        let q = Message::iterative_query(7, name("x.nl"), RType::A);
        assert!(!q.header.recursion_desired);
    }

    #[test]
    fn response_round_trip_with_all_sections() {
        let q = Message::iterative_query(9, name("q.ourtestdomain.nl"), RType::Txt);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.header.authoritative = true;
        resp.answers.push(Record::new(
            name("q.ourtestdomain.nl"),
            5,
            RData::Txt(Txt::from_string("site=SYD").unwrap()),
        ));
        resp.authorities.push(Record::new(
            name("ourtestdomain.nl"),
            3600,
            RData::Ns(Ns::new(name("ns1.ourtestdomain.nl"))),
        ));
        resp.additionals.push(Record::new(
            name("ns1.ourtestdomain.nl"),
            3600,
            RData::A(A::new(Ipv4Addr::new(203, 0, 113, 1))),
        ));
        let bytes = resp.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.header.id, 9);
        assert!(back.header.authoritative);
        assert_eq!(back.answers, resp.answers);
        assert_eq!(back.authorities, resp.authorities);
        assert_eq!(back.additionals, resp.additionals);
    }

    #[test]
    fn counts_recomputed_on_encode() {
        let mut m = Message::stub_query(1, name("a.b"), RType::A);
        m.header.qdcount = 99; // stale; encode must fix it
        let bytes = m.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.header.qdcount, 1);
        assert_eq!(back.header.arcount, 1); // the OPT record
    }

    #[test]
    fn compression_shrinks_response() {
        let q = Message::iterative_query(3, name("q.ourtestdomain.nl"), RType::Txt);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        for i in 1..=4 {
            resp.authorities.push(Record::new(
                name("ourtestdomain.nl"),
                3600,
                RData::Ns(Ns::new(name(&format!("ns{i}.ourtestdomain.nl")))),
            ));
        }
        let bytes = resp.encode().unwrap();
        // Four NS records naming the same suffix: compression should keep
        // the message well under the uncompressed size.
        let uncompressed: usize = resp.authorities.iter().map(|r| r.name.wire_len() + 10 + r.name.wire_len()).sum();
        assert!(bytes.len() < uncompressed);
        assert_same_content(&Message::decode(&bytes).unwrap(), &resp);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let q = Message::stub_query(5, name("a.b"), RType::A);
        let mut bytes = q.encode().unwrap();
        bytes.push(0);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_truncated() {
        let q = Message::stub_query(5, name("a.b"), RType::A);
        let bytes = q.encode().unwrap();
        assert!(Message::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let q = Message::iterative_query(11, name("q.ourtestdomain.nl"), RType::Txt);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.answers.push(Record::new(
            name("q.ourtestdomain.nl"),
            5,
            RData::Txt(Txt::from_string("site=FRA").unwrap()),
        ));
        let fresh = resp.encode().unwrap();
        let mut buf = b"stale bytes from a previous response".to_vec();
        let cap_before = buf.capacity();
        resp.encode_into(&mut buf).unwrap();
        assert_eq!(buf, fresh);
        assert!(buf.capacity() >= cap_before, "allocation must be reused, not replaced");
        // Encoding a second, smaller message into the same buffer leaves
        // exactly that message.
        let small = Message::response_to(&q, Rcode::Refused);
        small.encode_into(&mut buf).unwrap();
        assert_eq!(buf, small.encode().unwrap());
    }

    #[test]
    fn opcode_preserved_in_response() {
        let mut q = Message::stub_query(1, name("a.b"), RType::A);
        q.header.opcode = Opcode::Notify;
        let r = Message::response_to(&q, Rcode::NotImp);
        assert_eq!(r.header.opcode, Opcode::Notify);
        assert_eq!(r.rcode(), Rcode::NotImp);
    }
}
