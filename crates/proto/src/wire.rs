//! Low-level wire-format cursor types.
//!
//! DNS messages are read and written through [`WireReader`] and
//! [`WireWriter`]. Both keep explicit positions so that name compression
//! (RFC 1035 §4.1.4) can refer back to earlier offsets.

use crate::error::{ProtoError, ProtoResult};

/// Maximum size of a DNS message we are willing to emit or parse.
///
/// Classic UDP DNS is 512 bytes; EDNS0 extends this. We allow the full
/// 64 KiB space since the length fields are 16 bits.
pub const MAX_MESSAGE_SIZE: usize = u16::MAX as usize;

/// A bounds-checked reader over a DNS message buffer.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset from the start of the message.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Repositions the cursor. Used when following compression pointers.
    pub fn seek(&mut self, pos: usize) -> ProtoResult<()> {
        if pos > self.buf.len() {
            return Err(ProtoError::UnexpectedEnd {
                wanted: pos,
                available: self.buf.len(),
            });
        }
        self.pos = pos;
        Ok(())
    }

    /// Number of bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader has consumed the entire buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The whole underlying buffer (needed to follow compression pointers).
    pub fn buffer(&self) -> &'a [u8] {
        self.buf
    }

    /// Reads a single octet.
    pub fn read_u8(&mut self) -> ProtoResult<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(ProtoError::UnexpectedEnd { wanted: self.pos + 1, available: self.buf.len() })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian `u16`.
    pub fn read_u16(&mut self) -> ProtoResult<u16> {
        let bytes = self.read_bytes(2)?;
        Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn read_u32(&mut self) -> ProtoResult<u32> {
        let bytes = self.read_bytes(4)?;
        Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads exactly `n` bytes, advancing the cursor.
    pub fn read_bytes(&mut self, n: usize) -> ProtoResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::UnexpectedEnd {
            wanted: usize::MAX,
            available: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(ProtoError::UnexpectedEnd { wanted: end, available: self.buf.len() });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
}

/// An appending writer that builds a DNS message.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::with_capacity(512) }
    }

    /// Creates a writer with the given initial capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Creates a writer that reuses `buf`'s allocation. The vector is
    /// cleared; its capacity is kept, so a buffer recycled across
    /// messages settles at the working-set size and the hot encode path
    /// stops allocating. Recover the buffer with [`WireWriter::into_bytes`].
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf }
    }

    /// Current length of the message being built.
    pub fn position(&self) -> usize {
        self.buf.len()
    }

    /// Appends a single octet.
    pub fn write_u8(&mut self, v: u8) -> ProtoResult<()> {
        self.ensure_room(1)?;
        self.buf.push(v);
        Ok(())
    }

    /// Appends a big-endian `u16`.
    pub fn write_u16(&mut self, v: u16) -> ProtoResult<()> {
        self.ensure_room(2)?;
        self.buf.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Appends a big-endian `u32`.
    pub fn write_u32(&mut self, v: u32) -> ProtoResult<()> {
        self.ensure_room(4)?;
        self.buf.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Appends raw bytes.
    pub fn write_bytes(&mut self, v: &[u8]) -> ProtoResult<()> {
        self.ensure_room(v.len())?;
        self.buf.extend_from_slice(v);
        Ok(())
    }

    /// Overwrites the two bytes at `pos` with a big-endian `u16`.
    ///
    /// Used to patch RDLENGTH after the RDATA has been emitted.
    pub fn patch_u16(&mut self, pos: usize, v: u16) -> ProtoResult<()> {
        if pos + 2 > self.buf.len() {
            return Err(ProtoError::UnexpectedEnd { wanted: pos + 2, available: self.buf.len() });
        }
        self.buf[pos..pos + 2].copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Consumes the writer, yielding the finished message bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    fn ensure_room(&self, extra: usize) -> ProtoResult<()> {
        if self.buf.len() + extra > MAX_MESSAGE_SIZE {
            return Err(ProtoError::MessageTooLong(self.buf.len() + extra));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = WireWriter::new();
        w.write_u8(0xab).unwrap();
        w.write_u16(0xbeef).unwrap();
        w.write_u32(0xdeadbeef).unwrap();
        w.write_bytes(&[1, 2, 3]).unwrap();
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0xab);
        assert_eq!(r.read_u16().unwrap(), 0xbeef);
        assert_eq!(r.read_u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.read_bytes(3).unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_rejects_overrun() {
        let mut r = WireReader::new(&[0x01]);
        assert!(r.read_u16().is_err());
        assert_eq!(r.read_u8().unwrap(), 1);
        assert!(r.read_u8().is_err());
    }

    #[test]
    fn seek_bounds() {
        let mut r = WireReader::new(&[0, 1, 2]);
        assert!(r.seek(3).is_ok());
        assert!(r.seek(4).is_err());
    }

    #[test]
    fn patch_u16_updates_in_place() {
        let mut w = WireWriter::new();
        w.write_u16(0).unwrap();
        w.write_u8(9).unwrap();
        w.patch_u16(0, 0x1234).unwrap();
        assert_eq!(w.as_slice(), &[0x12, 0x34, 9]);
    }

    #[test]
    fn patch_u16_out_of_range() {
        let mut w = WireWriter::new();
        w.write_u8(0).unwrap();
        assert!(w.patch_u16(0, 1).is_err());
    }
}
