//! Domain names: presentation format, wire format, and compression.
//!
//! A [`Name`] is a sequence of labels, stored uncompressed. Comparison and
//! hashing are case-insensitive per RFC 1035 §2.3.3, while the original
//! spelling is preserved for display.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use crate::error::{ProtoError, ProtoResult};
use crate::wire::{WireReader, WireWriter};

/// Maximum length of a single label, in octets.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name on the wire (labels + length octets + root).
pub const MAX_NAME_LEN: usize = 255;

/// One label of a domain name (1–63 octets, arbitrary bytes).
#[derive(Debug, Clone, Eq)]
pub struct Label(Box<[u8]>);

impl Label {
    /// Creates a label from raw octets.
    pub fn new(bytes: &[u8]) -> ProtoResult<Self> {
        if bytes.is_empty() {
            return Err(ProtoError::BadNameSyntax("empty label".into()));
        }
        if bytes.len() > MAX_LABEL_LEN {
            return Err(ProtoError::LabelTooLong(bytes.len()));
        }
        Ok(Label(bytes.into()))
    }

    /// The raw octets of the label.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in octets.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false: labels have at least one octet.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// ASCII-lowercased copy, used for canonical comparison.
    fn to_lower(&self) -> Vec<u8> {
        self.0.iter().map(|b| b.to_ascii_lowercase()).collect()
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len()
            && self
                .0
                .iter()
                .zip(other.0.iter())
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl Hash for Label {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for b in self.0.iter() {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in self.0.iter() {
            match b {
                b'.' | b'\\' => write!(f, "\\{}", b as char)?,
                0x21..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\{:03}", b)?,
            }
        }
        Ok(())
    }
}

/// An absolute domain name (always implicitly rooted).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Name {
    labels: Vec<Label>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Builds a name from labels (first label is the leftmost).
    pub fn from_labels<I, B>(labels: I) -> ProtoResult<Self>
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let labels = labels
            .into_iter()
            .map(|l| Label::new(l.as_ref()))
            .collect::<ProtoResult<Vec<_>>>()?;
        let name = Name { labels };
        name.check_len()?;
        Ok(name)
    }

    /// Parses presentation format, e.g. `"www.example.nl"` or `"example.nl."`.
    ///
    /// Only simple escaping is supported: `\.` for a literal dot and
    /// `\NNN` decimal escapes.
    pub fn parse(s: &str) -> ProtoResult<Self> {
        if s == "." || s.is_empty() {
            return Ok(Name::root());
        }
        let bytes = s.as_bytes();
        let mut labels = Vec::new();
        let mut current: Vec<u8> = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => {
                    if i + 1 >= bytes.len() {
                        return Err(ProtoError::BadNameSyntax(s.into()));
                    }
                    let next = bytes[i + 1];
                    if next.is_ascii_digit() {
                        if i + 3 >= bytes.len() {
                            return Err(ProtoError::BadNameSyntax(s.into()));
                        }
                        let code = std::str::from_utf8(&bytes[i + 1..i + 4])
                            .ok()
                            .and_then(|t| t.parse::<u16>().ok())
                            .filter(|&v| v <= 255)
                            .ok_or_else(|| ProtoError::BadNameSyntax(s.into()))?;
                        current.push(code as u8);
                        i += 4;
                    } else {
                        current.push(next);
                        i += 2;
                    }
                }
                b'.' => {
                    labels.push(Label::new(&current)?);
                    current.clear();
                    i += 1;
                }
                b => {
                    current.push(b);
                    i += 1;
                }
            }
        }
        if !current.is_empty() {
            labels.push(Label::new(&current)?);
        } else if bytes.last() != Some(&b'.') {
            return Err(ProtoError::BadNameSyntax(s.into()));
        }
        let name = Name { labels };
        name.check_len()?;
        Ok(name)
    }

    /// The labels, leftmost first.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Wire-format length in octets, including per-label length octets and
    /// the terminating root octet.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Returns a new name with `label` prepended, e.g. turning
    /// `example.nl` into `probe-17.example.nl`.
    pub fn prepend(&self, label: &str) -> ProtoResult<Self> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(Label::new(label.as_bytes())?);
        labels.extend(self.labels.iter().cloned());
        let name = Name { labels };
        name.check_len()?;
        Ok(name)
    }

    /// The parent of this name (`www.example.nl` → `example.nl`).
    /// The root has no parent.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name { labels: self.labels[1..].to_vec() })
        }
    }

    /// Whether `self` is equal to or a subdomain of `ancestor`.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        if ancestor.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - ancestor.labels.len();
        self.labels[offset..]
            .iter()
            .zip(ancestor.labels.iter())
            .all(|(a, b)| a == b)
    }

    /// Canonical (lowercased) wire form with no compression. Used as a map
    /// key for compression and caching.
    pub fn canonical_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        for label in &self.labels {
            out.push(label.len() as u8);
            out.extend(label.to_lower());
        }
        out.push(0);
        out
    }

    fn check_len(&self) -> ProtoResult<()> {
        let len = self.wire_len();
        if len > MAX_NAME_LEN {
            return Err(ProtoError::NameTooLong(len));
        }
        Ok(())
    }

    /// Encodes the name without compression.
    pub fn encode_uncompressed(&self, w: &mut WireWriter) -> ProtoResult<()> {
        for label in &self.labels {
            w.write_u8(label.len() as u8)?;
            w.write_bytes(label.as_bytes())?;
        }
        w.write_u8(0)
    }

    /// Encodes the name using the shared [`NameCompressor`] state.
    pub fn encode(&self, w: &mut WireWriter, compressor: &mut NameCompressor) -> ProtoResult<()> {
        compressor.encode_name(self, w)
    }

    /// Decodes a (possibly compressed) name from the reader.
    ///
    /// Compression pointers may only point strictly backwards; loops and
    /// forward pointers are rejected.
    pub fn decode(r: &mut WireReader<'_>) -> ProtoResult<Self> {
        let mut labels = Vec::new();
        let mut wire_len = 1usize; // terminating root octet
        // Position to restore once the first pointer is followed.
        let mut restore: Option<usize> = None;
        let mut min_ptr = r.position();

        loop {
            let len = r.read_u8()?;
            match len & 0xc0 {
                0x00 => {
                    if len == 0 {
                        break;
                    }
                    let bytes = r.read_bytes(len as usize)?;
                    wire_len += len as usize + 1;
                    if wire_len > MAX_NAME_LEN {
                        return Err(ProtoError::NameTooLong(wire_len));
                    }
                    labels.push(Label::new(bytes)?);
                }
                0xc0 => {
                    let lo = r.read_u8()?;
                    let target = (((len & 0x3f) as usize) << 8) | lo as usize;
                    if target >= min_ptr {
                        return Err(ProtoError::BadCompressionPointer(target));
                    }
                    if restore.is_none() {
                        restore = Some(r.position());
                    }
                    min_ptr = target;
                    r.seek(target)?;
                }
                other => return Err(ProtoError::BadLabelType(other)),
            }
        }

        if let Some(pos) = restore {
            r.seek(pos)?;
        }
        Ok(Name { labels })
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for label in &self.labels {
            write!(f, "{label}.")?;
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = ProtoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

/// Shared compression state for one message being written.
///
/// Tracks, for every name suffix already emitted, its offset in the
/// message. Subsequent names reuse the longest matching suffix via a
/// compression pointer. Only offsets below 0x3FFF are eligible (the
/// pointer encoding has 14 bits).
#[derive(Debug, Default)]
pub struct NameCompressor {
    offsets: HashMap<Vec<u8>, u16>,
}

impl NameCompressor {
    /// Creates an empty compressor for a new message.
    pub fn new() -> Self {
        Self::default()
    }

    fn encode_name(&mut self, name: &Name, w: &mut WireWriter) -> ProtoResult<()> {
        let labels = name.labels();
        for (i, label) in labels.iter().enumerate() {
            let suffix_key = suffix_key(&labels[i..]);
            if let Some(&offset) = self.offsets.get(&suffix_key) {
                w.write_u16(0xc000 | offset)?;
                return Ok(());
            }
            let here = w.position();
            if here <= 0x3fff {
                self.offsets.insert(suffix_key, here as u16);
            }
            w.write_u8(label.len() as u8)?;
            w.write_bytes(label.as_bytes())?;
        }
        w.write_u8(0)
    }
}

fn suffix_key(labels: &[Label]) -> Vec<u8> {
    let mut key = Vec::new();
    for label in labels {
        key.push(label.len() as u8);
        key.extend(label.to_lower());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(name("example.nl").to_string(), "example.nl.");
        assert_eq!(name("example.nl.").to_string(), "example.nl.");
        assert_eq!(name(".").to_string(), ".");
        assert_eq!(Name::root().to_string(), ".");
    }

    #[test]
    fn parse_rejects_bad_syntax() {
        assert!(Name::parse("a..b").is_err());
        assert!(Name::parse("..").is_err());
        assert!(Name::parse(&"a".repeat(64)).is_err());
    }

    #[test]
    fn parse_escapes() {
        let n = Name::parse(r"a\.b.example").unwrap();
        assert_eq!(n.label_count(), 2);
        assert_eq!(n.labels()[0].as_bytes(), b"a.b");
        let n = Name::parse(r"a\046b.example").unwrap();
        assert_eq!(n.labels()[0].as_bytes(), b"a.b");
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        let a = name("Example.NL");
        let b = name("eXAMPLE.nl");
        assert_eq!(a, b);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn subdomain_relations() {
        assert!(name("www.example.nl").is_subdomain_of(&name("example.nl")));
        assert!(name("example.nl").is_subdomain_of(&name("example.nl")));
        assert!(name("example.nl").is_subdomain_of(&Name::root()));
        assert!(!name("example.nl").is_subdomain_of(&name("www.example.nl")));
        assert!(!name("badexample.nl").is_subdomain_of(&name("example.nl")));
    }

    #[test]
    fn parent_and_prepend() {
        let n = name("example.nl");
        assert_eq!(n.parent().unwrap(), name("nl"));
        assert_eq!(name("nl").parent().unwrap(), Name::root());
        assert!(Name::root().parent().is_none());
        assert_eq!(n.prepend("www").unwrap(), name("www.example.nl"));
    }

    #[test]
    fn wire_round_trip_uncompressed() {
        let n = name("www.example.nl");
        let mut w = WireWriter::new();
        n.encode_uncompressed(&mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), n.wire_len());
        let mut r = WireReader::new(&bytes);
        assert_eq!(Name::decode(&mut r).unwrap(), n);
    }

    #[test]
    fn compression_reuses_suffixes() {
        let mut w = WireWriter::new();
        let mut c = NameCompressor::new();
        name("ns1.example.nl").encode(&mut w, &mut c).unwrap();
        let first_len = w.position();
        name("ns2.example.nl").encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        // second name should be label "ns2" (4 bytes) + pointer (2 bytes)
        assert_eq!(bytes.len(), first_len + 4 + 2);

        let mut r = WireReader::new(&bytes);
        assert_eq!(Name::decode(&mut r).unwrap(), name("ns1.example.nl"));
        assert_eq!(Name::decode(&mut r).unwrap(), name("ns2.example.nl"));
        assert!(r.is_empty());
    }

    #[test]
    fn compression_full_name_pointer() {
        let mut w = WireWriter::new();
        let mut c = NameCompressor::new();
        name("example.nl").encode(&mut w, &mut c).unwrap();
        name("EXAMPLE.nl").encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let a = Name::decode(&mut r).unwrap();
        let b = Name::decode(&mut r).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_pointer_loop() {
        // pointer at offset 0 pointing to itself
        let bytes = [0xc0, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(Name::decode(&mut r).is_err());
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        let bytes = [0xc0, 0x04, 0, 0, 0];
        let mut r = WireReader::new(&bytes);
        assert!(Name::decode(&mut r).is_err());
    }

    #[test]
    fn decode_rejects_bad_label_type() {
        let bytes = [0x40, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(Name::decode(&mut r), Err(ProtoError::BadLabelType(_))));
    }

    #[test]
    fn decode_rejects_overlong_name() {
        // 5 labels of 63 bytes = 320 octets wire > 255
        let mut bytes = Vec::new();
        for _ in 0..5 {
            bytes.push(63);
            bytes.extend(std::iter::repeat(b'a').take(63));
        }
        bytes.push(0);
        let mut r = WireReader::new(&bytes);
        assert!(matches!(Name::decode(&mut r), Err(ProtoError::NameTooLong(_))));
    }

    #[test]
    fn root_round_trip() {
        let mut w = WireWriter::new();
        Name::root().encode_uncompressed(&mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0]);
        let mut r = WireReader::new(&bytes);
        assert!(Name::decode(&mut r).unwrap().is_root());
    }
}
