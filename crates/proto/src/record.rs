//! Resource records (RFC 1035 §4.1.3).

use std::fmt;

use crate::error::ProtoResult;
use crate::name::{Name, NameCompressor};
use crate::rdata::RData;
use crate::types::{Class, RType};
use crate::wire::{WireReader, WireWriter};

/// A full resource record: owner name, class, TTL and typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Record class.
    pub class: Class,
    /// Time to live, seconds. The paper's test records use TTL=5 to
    /// defeat record caching between probe rounds.
    pub ttl: u32,
    /// Typed payload.
    pub rdata: RData,
}

impl Record {
    /// Creates an Internet-class record.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record { name, class: Class::In, ttl, rdata }
    }

    /// Creates a record with an explicit class (CHAOS identification).
    pub fn with_class(name: Name, class: Class, ttl: u32, rdata: RData) -> Self {
        Record { name, class, ttl, rdata }
    }

    /// The record's TYPE, derived from the RDATA.
    pub fn rtype(&self) -> RType {
        self.rdata.rtype()
    }

    /// Encodes the record, patching RDLENGTH after the RDATA is written.
    pub fn encode(&self, w: &mut WireWriter, c: &mut NameCompressor) -> ProtoResult<()> {
        self.name.encode(w, c)?;
        w.write_u16(self.rtype().to_u16())?;
        w.write_u16(self.class.to_u16())?;
        w.write_u32(self.ttl)?;
        let len_pos = w.position();
        w.write_u16(0)?; // placeholder RDLENGTH
        let rdata_start = w.position();
        self.rdata.encode(w, c)?;
        let rdlen = w.position() - rdata_start;
        w.patch_u16(len_pos, rdlen as u16)
    }

    /// Decodes one record.
    pub fn decode(r: &mut WireReader<'_>) -> ProtoResult<Self> {
        let name = Name::decode(r)?;
        let rtype = RType::from_u16(r.read_u16()?);
        let class = Class::from_u16(r.read_u16()?);
        let ttl = r.read_u32()?;
        let rdlength = r.read_u16()? as usize;
        let rdata = RData::decode(r, rtype, rdlength)?;
        Ok(Record { name, class, ttl, rdata })
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.name, self.ttl, self.class, self.rtype())?;
        match &self.rdata {
            RData::A(a) => write!(f, " {}", a.addr()),
            RData::Aaaa(a) => write!(f, " {}", a.addr()),
            RData::Ns(n) => write!(f, " {}", n.name()),
            RData::Cname(n) => write!(f, " {}", n.name()),
            RData::Ptr(n) => write!(f, " {}", n.name()),
            RData::Mx(m) => write!(f, " {} {}", m.preference, m.exchange),
            RData::Txt(t) => write!(f, " {:?}", t.first_as_string()),
            RData::Soa(s) => write!(
                f,
                " {} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Opt(o) => write!(f, " ({} options)", o.options.len()),
            RData::Unknown { data, .. } => write!(f, " \\# {}", data.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::{Txt, A};
    use std::net::Ipv4Addr;

    #[test]
    fn round_trip_txt() {
        let rec = Record::new(
            Name::parse("q.ourtestdomain.nl").unwrap(),
            5,
            RData::Txt(Txt::from_string("site=FRA").unwrap()),
        );
        let mut w = WireWriter::new();
        let mut c = NameCompressor::new();
        rec.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Record::decode(&mut r).unwrap(), rec);
        assert!(r.is_empty());
    }

    #[test]
    fn rdlength_is_patched() {
        let rec = Record::new(
            Name::parse("a.example").unwrap(),
            60,
            RData::A(A::new(Ipv4Addr::new(192, 0, 2, 7))),
        );
        let mut w = WireWriter::new();
        let mut c = NameCompressor::new();
        rec.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        // RDLENGTH is the two bytes before the last four (the address)
        let rdlen = u16::from_be_bytes([bytes[bytes.len() - 6], bytes[bytes.len() - 5]]);
        assert_eq!(rdlen, 4);
    }

    #[test]
    fn display_is_zone_file_like() {
        let rec = Record::new(
            Name::parse("example.nl").unwrap(),
            3600,
            RData::A(A::new(Ipv4Addr::new(192, 0, 2, 1))),
        );
        assert_eq!(rec.to_string(), "example.nl. 3600 IN A 192.0.2.1");
    }
}
