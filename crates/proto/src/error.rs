//! Error types for DNS wire-format processing.

use std::fmt;

/// Result alias used throughout the proto crate.
pub type ProtoResult<T> = Result<T, ProtoError>;

/// Errors raised while encoding or decoding DNS messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ended before the indicated number of bytes was available.
    UnexpectedEnd {
        /// Offset (or length) that was required.
        wanted: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A label exceeded the 63-octet limit of RFC 1035 §2.3.4.
    LabelTooLong(usize),
    /// An encoded name exceeded the 255-octet limit of RFC 1035 §2.3.4.
    NameTooLong(usize),
    /// A domain name in presentation format was malformed.
    BadNameSyntax(String),
    /// A compression pointer pointed forward or formed a loop.
    BadCompressionPointer(usize),
    /// An unknown label type (the two high bits were `01` or `10`).
    BadLabelType(u8),
    /// The message would exceed the 64 KiB wire limit.
    MessageTooLong(usize),
    /// RDATA length did not match the parsed RDATA.
    RdataLengthMismatch {
        /// RDLENGTH from the wire.
        declared: usize,
        /// Bytes actually consumed by the RDATA parser.
        consumed: usize,
    },
    /// A TXT character-string exceeded 255 octets.
    CharacterStringTooLong(usize),
    /// Any other malformed-message condition.
    Malformed(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::UnexpectedEnd { wanted, available } => {
                write!(f, "unexpected end of buffer: wanted {wanted} bytes, have {available}")
            }
            ProtoError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            ProtoError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            ProtoError::BadNameSyntax(s) => write!(f, "bad name syntax: {s:?}"),
            ProtoError::BadCompressionPointer(p) => {
                write!(f, "bad compression pointer to offset {p}")
            }
            ProtoError::BadLabelType(b) => write!(f, "unknown label type in octet {b:#04x}"),
            ProtoError::MessageTooLong(n) => write!(f, "message of {n} bytes exceeds 64 KiB"),
            ProtoError::RdataLengthMismatch { declared, consumed } => {
                write!(f, "rdata length mismatch: declared {declared}, consumed {consumed}")
            }
            ProtoError::CharacterStringTooLong(n) => {
                write!(f, "character-string of {n} octets exceeds 255")
            }
            ProtoError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}
