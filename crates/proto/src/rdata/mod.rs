//! RDATA: the typed payload of a resource record.

mod address;
mod mx;
mod name_rdata;
mod opt;
mod soa;
mod txt;

pub use address::{A, Aaaa};
pub use mx::Mx;
pub use name_rdata::{Cname, Ns, Ptr};
pub use opt::Opt;
pub use soa::Soa;
pub use txt::Txt;

use crate::error::{ProtoError, ProtoResult};
use crate::name::NameCompressor;
use crate::types::RType;
use crate::wire::{WireReader, WireWriter};

/// The payload of a resource record, dispatched by TYPE.
///
/// Types we do not model are preserved verbatim in [`RData::Unknown`] so
/// that messages survive a decode/encode round trip.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// IPv4 address.
    A(A),
    /// IPv6 address.
    Aaaa(Aaaa),
    /// Name server.
    Ns(Ns),
    /// Canonical name.
    Cname(Cname),
    /// Reverse pointer.
    Ptr(Ptr),
    /// Mail exchange.
    Mx(Mx),
    /// Text record.
    Txt(Txt),
    /// Start of authority.
    Soa(Soa),
    /// EDNS0 OPT pseudo-record payload.
    Opt(Opt),
    /// Unmodelled type: raw RDATA bytes.
    Unknown {
        /// The wire TYPE code.
        rtype: u16,
        /// The raw RDATA.
        data: Vec<u8>,
    },
}

impl RData {
    /// The record TYPE this payload corresponds to.
    pub fn rtype(&self) -> RType {
        match self {
            RData::A(_) => RType::A,
            RData::Aaaa(_) => RType::Aaaa,
            RData::Ns(_) => RType::Ns,
            RData::Cname(_) => RType::Cname,
            RData::Ptr(_) => RType::Ptr,
            RData::Mx(_) => RType::Mx,
            RData::Txt(_) => RType::Txt,
            RData::Soa(_) => RType::Soa,
            RData::Opt(_) => RType::Opt,
            RData::Unknown { rtype, .. } => RType::Unknown(*rtype),
        }
    }

    /// Encodes the RDATA (without the RDLENGTH prefix).
    ///
    /// Names inside RDATA of the classic types (NS, CNAME, PTR, SOA, MX)
    /// participate in compression, matching common server behaviour.
    pub fn encode(&self, w: &mut WireWriter, c: &mut NameCompressor) -> ProtoResult<()> {
        match self {
            RData::A(a) => a.encode(w),
            RData::Aaaa(a) => a.encode(w),
            RData::Ns(n) => n.encode(w, c),
            RData::Cname(n) => n.encode(w, c),
            RData::Ptr(n) => n.encode(w, c),
            RData::Mx(m) => m.encode(w, c),
            RData::Txt(t) => t.encode(w),
            RData::Soa(s) => s.encode(w, c),
            RData::Opt(o) => o.encode(w),
            RData::Unknown { data, .. } => w.write_bytes(data),
        }
    }

    /// Decodes RDATA of the given type. `rdlength` bytes must be consumed.
    pub fn decode(
        r: &mut WireReader<'_>,
        rtype: RType,
        rdlength: usize,
    ) -> ProtoResult<Self> {
        let start = r.position();
        let value = match rtype {
            RType::A => RData::A(A::decode(r)?),
            RType::Aaaa => RData::Aaaa(Aaaa::decode(r)?),
            RType::Ns => RData::Ns(Ns::decode(r)?),
            RType::Cname => RData::Cname(Cname::decode(r)?),
            RType::Ptr => RData::Ptr(Ptr::decode(r)?),
            RType::Mx => RData::Mx(Mx::decode(r)?),
            RType::Txt => RData::Txt(Txt::decode(r, rdlength)?),
            RType::Soa => RData::Soa(Soa::decode(r)?),
            RType::Opt => RData::Opt(Opt::decode(r, rdlength)?),
            RType::Unknown(code) => {
                let data = r.read_bytes(rdlength)?.to_vec();
                RData::Unknown { rtype: code, data }
            }
        };
        let consumed = r.position() - start;
        if consumed != rdlength {
            return Err(ProtoError::RdataLengthMismatch { declared: rdlength, consumed });
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;
    use std::net::Ipv4Addr;

    fn round_trip(rdata: RData) {
        let mut w = WireWriter::new();
        let mut c = NameCompressor::new();
        rdata.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = RData::decode(&mut r, rdata.rtype(), bytes.len()).unwrap();
        assert_eq!(back, rdata);
    }

    #[test]
    fn round_trip_each_type() {
        round_trip(RData::A(A::new(Ipv4Addr::new(192, 0, 2, 1))));
        round_trip(RData::Aaaa(Aaaa::new("2001:db8::1".parse().unwrap())));
        round_trip(RData::Ns(Ns::new(Name::parse("ns1.example.nl").unwrap())));
        round_trip(RData::Cname(Cname::new(Name::parse("alias.example.nl").unwrap())));
        round_trip(RData::Ptr(Ptr::new(Name::parse("host.example.nl").unwrap())));
        round_trip(RData::Mx(Mx::new(10, Name::parse("mail.example.nl").unwrap())));
        round_trip(RData::Txt(Txt::from_string("site=fra").unwrap()));
        round_trip(RData::Soa(Soa::new(
            Name::parse("ns1.example.nl").unwrap(),
            Name::parse("hostmaster.example.nl").unwrap(),
            2017041201,
            7200,
            3600,
            604800,
            300,
        )));
        round_trip(RData::Unknown { rtype: 99, data: vec![1, 2, 3, 4] });
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        // A record with rdlength 5 (must be 4)
        let bytes = [192, 0, 2, 1, 0];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            RData::decode(&mut r, RType::A, 5),
            Err(ProtoError::RdataLengthMismatch { .. })
        ));
    }
}
