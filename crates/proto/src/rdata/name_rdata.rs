//! RDATA types whose payload is a single domain name: NS, CNAME, PTR.

use crate::error::ProtoResult;
use crate::name::{Name, NameCompressor};
use crate::wire::{WireReader, WireWriter};

macro_rules! single_name_rdata {
    ($(#[$doc:meta])* $ty:ident, $field_doc:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Hash)]
        pub struct $ty(pub Name);

        impl $ty {
            #[doc = concat!("Wraps ", $field_doc, ".")]
            pub fn new(name: Name) -> Self {
                $ty(name)
            }

            /// The contained name.
            pub fn name(&self) -> &Name {
                &self.0
            }

            pub(crate) fn encode(
                &self,
                w: &mut WireWriter,
                c: &mut NameCompressor,
            ) -> ProtoResult<()> {
                self.0.encode(w, c)
            }

            pub(crate) fn decode(r: &mut WireReader<'_>) -> ProtoResult<Self> {
                Ok($ty(Name::decode(r)?))
            }
        }
    };
}

single_name_rdata!(
    /// An `NS` record: the host name of an authoritative server
    /// (RFC 1035 §3.3.11).
    Ns,
    "the name-server host name"
);

single_name_rdata!(
    /// A `CNAME` record: the canonical name of an alias (RFC 1035 §3.3.1).
    Cname,
    "the canonical name"
);

single_name_rdata!(
    /// A `PTR` record: a pointer to another name (RFC 1035 §3.3.12).
    Ptr,
    "the target name"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip_with_compression() {
        let mut w = WireWriter::new();
        let mut c = NameCompressor::new();
        let n1 = Ns::new(Name::parse("ns1.example.nl").unwrap());
        let n2 = Ns::new(Name::parse("ns2.example.nl").unwrap());
        n1.encode(&mut w, &mut c).unwrap();
        n2.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Ns::decode(&mut r).unwrap(), n1);
        assert_eq!(Ns::decode(&mut r).unwrap(), n2);
    }

    #[test]
    fn accessors() {
        let name = Name::parse("a.b").unwrap();
        assert_eq!(Cname::new(name.clone()).name(), &name);
        assert_eq!(Ptr::new(name.clone()).name(), &name);
    }
}
