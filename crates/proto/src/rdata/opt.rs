//! EDNS0 OPT pseudo-record payload (RFC 6891).
//!
//! Modern recursive resolvers attach an OPT record to nearly every query,
//! so the authoritative server must at least parse and echo it. The
//! interesting fields for us live in the record *header* (UDP payload
//! size in CLASS, extended RCODE/flags in TTL); the RDATA itself is a
//! list of attribute-value options, which we preserve opaquely.

use crate::error::{ProtoError, ProtoResult};
use crate::wire::{WireReader, WireWriter};

/// One EDNS option (code plus opaque data).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdnsOption {
    /// Option code (e.g. 10 = COOKIE, 8 = Client Subnet).
    pub code: u16,
    /// Raw option payload.
    pub data: Vec<u8>,
}

/// OPT RDATA: a sequence of EDNS options.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Opt {
    /// Options in wire order.
    pub options: Vec<EdnsOption>,
}

impl Opt {
    /// An OPT payload with no options (the common case for plain EDNS0).
    pub fn empty() -> Self {
        Opt::default()
    }

    /// Builds an OPT payload from options.
    pub fn new(options: Vec<EdnsOption>) -> Self {
        Opt { options }
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) -> ProtoResult<()> {
        for opt in &self.options {
            w.write_u16(opt.code)?;
            if opt.data.len() > u16::MAX as usize {
                return Err(ProtoError::Malformed("EDNS option too long"));
            }
            w.write_u16(opt.data.len() as u16)?;
            w.write_bytes(&opt.data)?;
        }
        Ok(())
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, rdlength: usize) -> ProtoResult<Self> {
        let end = r.position() + rdlength;
        let mut options = Vec::new();
        while r.position() < end {
            let code = r.read_u16()?;
            let len = r.read_u16()? as usize;
            if r.position() + len > end {
                return Err(ProtoError::Malformed("EDNS option crosses RDATA boundary"));
            }
            options.push(EdnsOption { code, data: r.read_bytes(len)?.to_vec() });
        }
        Ok(Opt { options })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trip() {
        let opt = Opt::empty();
        let mut w = WireWriter::new();
        opt.encode(&mut w).unwrap();
        assert!(w.as_slice().is_empty());
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(Opt::decode(&mut r, 0).unwrap(), opt);
    }

    #[test]
    fn options_round_trip() {
        let opt = Opt::new(vec![
            EdnsOption { code: 10, data: vec![1, 2, 3, 4, 5, 6, 7, 8] },
            EdnsOption { code: 8, data: vec![0, 1, 24, 0, 192, 0, 2] },
        ]);
        let mut w = WireWriter::new();
        opt.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Opt::decode(&mut r, bytes.len()).unwrap(), opt);
    }

    #[test]
    fn decode_rejects_truncated_option() {
        let bytes = [0u8, 10, 0, 8, 1, 2]; // claims 8 bytes, has 2
        let mut r = WireReader::new(&bytes);
        assert!(Opt::decode(&mut r, bytes.len()).is_err());
    }
}
