//! TXT record payload (RFC 1035 §3.3.14).
//!
//! TXT is the measurement workhorse of the reproduced paper: each
//! authoritative site answers the probed TXT name with a *distinct*
//! string, so the client learns in-band which site served it.

use crate::error::{ProtoError, ProtoResult};
use crate::wire::{WireReader, WireWriter};

/// A TXT record: one or more character-strings of up to 255 octets each.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Txt {
    strings: Vec<Vec<u8>>,
}

impl Txt {
    /// Builds a TXT payload from character-strings.
    pub fn new<I, B>(strings: I) -> ProtoResult<Self>
    where
        I: IntoIterator<Item = B>,
        B: Into<Vec<u8>>,
    {
        let strings: Vec<Vec<u8>> = strings.into_iter().map(Into::into).collect();
        for s in &strings {
            if s.len() > 255 {
                return Err(ProtoError::CharacterStringTooLong(s.len()));
            }
        }
        if strings.is_empty() {
            return Err(ProtoError::Malformed("TXT must contain at least one string"));
        }
        Ok(Txt { strings })
    }

    /// Convenience constructor from a single UTF-8 string.
    pub fn from_string(s: &str) -> ProtoResult<Self> {
        Txt::new([s.as_bytes().to_vec()])
    }

    /// The character-strings.
    pub fn strings(&self) -> &[Vec<u8>] {
        &self.strings
    }

    /// The first string, lossily decoded — convenient for site identifiers.
    pub fn first_as_string(&self) -> String {
        String::from_utf8_lossy(&self.strings[0]).into_owned()
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) -> ProtoResult<()> {
        for s in &self.strings {
            w.write_u8(s.len() as u8)?;
            w.write_bytes(s)?;
        }
        Ok(())
    }

    pub(crate) fn decode(r: &mut WireReader<'_>, rdlength: usize) -> ProtoResult<Self> {
        let end = r.position() + rdlength;
        let mut strings = Vec::new();
        while r.position() < end {
            let len = r.read_u8()? as usize;
            if r.position() + len > end {
                return Err(ProtoError::Malformed("TXT string crosses RDATA boundary"));
            }
            strings.push(r.read_bytes(len)?.to_vec());
        }
        if strings.is_empty() {
            return Err(ProtoError::Malformed("empty TXT RDATA"));
        }
        Ok(Txt { strings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_string_round_trip() {
        let t = Txt::from_string("site=GRU probe=atlas").unwrap();
        let mut w = WireWriter::new();
        t.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = Txt::decode(&mut r, bytes.len()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.first_as_string(), "site=GRU probe=atlas");
    }

    #[test]
    fn multiple_strings_round_trip() {
        let t = Txt::new([b"one".to_vec(), b"two".to_vec()]).unwrap();
        let mut w = WireWriter::new();
        t.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Txt::decode(&mut r, bytes.len()).unwrap().strings().len(), 2);
    }

    #[test]
    fn rejects_oversized_string() {
        assert!(matches!(
            Txt::new([vec![0u8; 256]]),
            Err(ProtoError::CharacterStringTooLong(256))
        ));
    }

    #[test]
    fn rejects_empty() {
        let strings: Vec<Vec<u8>> = vec![];
        assert!(Txt::new(strings).is_err());
    }

    #[test]
    fn decode_rejects_string_crossing_boundary() {
        // length octet says 10, but rdlength is 3
        let bytes = [10u8, b'a', b'b'];
        let mut r = WireReader::new(&bytes);
        assert!(Txt::decode(&mut r, 3).is_err());
    }
}
