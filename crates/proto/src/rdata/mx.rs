//! MX record payload (RFC 1035 §3.3.9).

use crate::error::ProtoResult;
use crate::name::{Name, NameCompressor};
use crate::wire::{WireReader, WireWriter};

/// Mail-exchange record: preference plus exchange host.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mx {
    /// Lower is preferred.
    pub preference: u16,
    /// The mail exchange host.
    pub exchange: Name,
}

impl Mx {
    /// Creates an MX payload.
    pub fn new(preference: u16, exchange: Name) -> Self {
        Mx { preference, exchange }
    }

    pub(crate) fn encode(&self, w: &mut WireWriter, c: &mut NameCompressor) -> ProtoResult<()> {
        w.write_u16(self.preference)?;
        self.exchange.encode(w, c)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> ProtoResult<Self> {
        Ok(Mx { preference: r.read_u16()?, exchange: Name::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mx = Mx::new(10, Name::parse("mail.example.nl").unwrap());
        let mut w = WireWriter::new();
        let mut c = NameCompressor::new();
        mx.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Mx::decode(&mut r).unwrap(), mx);
    }
}
