//! A and AAAA record payloads.

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::ProtoResult;
use crate::wire::{WireReader, WireWriter};

/// An `A` record: a 32-bit IPv4 address (RFC 1035 §3.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct A(pub Ipv4Addr);

impl A {
    /// Wraps an IPv4 address.
    pub fn new(addr: Ipv4Addr) -> Self {
        A(addr)
    }

    /// The address.
    pub fn addr(&self) -> Ipv4Addr {
        self.0
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) -> ProtoResult<()> {
        w.write_bytes(&self.0.octets())
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> ProtoResult<Self> {
        let b = r.read_bytes(4)?;
        Ok(A(Ipv4Addr::new(b[0], b[1], b[2], b[3])))
    }
}

/// An `AAAA` record: a 128-bit IPv6 address (RFC 3596).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Aaaa(pub Ipv6Addr);

impl Aaaa {
    /// Wraps an IPv6 address.
    pub fn new(addr: Ipv6Addr) -> Self {
        Aaaa(addr)
    }

    /// The address.
    pub fn addr(&self) -> Ipv6Addr {
        self.0
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) -> ProtoResult<()> {
        w.write_bytes(&self.0.octets())
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> ProtoResult<Self> {
        let b = r.read_bytes(16)?;
        let mut octets = [0u8; 16];
        octets.copy_from_slice(b);
        Ok(Aaaa(Ipv6Addr::from(octets)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_wire_is_four_octets() {
        let mut w = WireWriter::new();
        A::new(Ipv4Addr::new(10, 1, 2, 3)).encode(&mut w).unwrap();
        assert_eq!(w.as_slice(), &[10, 1, 2, 3]);
    }

    #[test]
    fn aaaa_wire_is_sixteen_octets() {
        let mut w = WireWriter::new();
        Aaaa::new("::1".parse().unwrap()).encode(&mut w).unwrap();
        assert_eq!(w.as_slice().len(), 16);
        assert_eq!(w.as_slice()[15], 1);
    }

    #[test]
    fn truncated_decode_fails() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert!(A::decode(&mut r).is_err());
        let mut r = WireReader::new(&[0; 15]);
        assert!(Aaaa::decode(&mut r).is_err());
    }
}
