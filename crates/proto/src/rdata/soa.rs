//! SOA record payload (RFC 1035 §3.3.13).

use crate::error::ProtoResult;
use crate::name::{Name, NameCompressor};
use crate::wire::{WireReader, WireWriter};

/// Start-of-authority record: zone apex metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Soa {
    /// Primary master name server.
    pub mname: Name,
    /// Mailbox of the person responsible (encoded as a name).
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry interval, seconds.
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308 semantics).
    pub minimum: u32,
}

impl Soa {
    /// Creates an SOA payload.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mname: Name,
        rname: Name,
        serial: u32,
        refresh: u32,
        retry: u32,
        expire: u32,
        minimum: u32,
    ) -> Self {
        Soa { mname, rname, serial, refresh, retry, expire, minimum }
    }

    pub(crate) fn encode(&self, w: &mut WireWriter, c: &mut NameCompressor) -> ProtoResult<()> {
        self.mname.encode(w, c)?;
        self.rname.encode(w, c)?;
        w.write_u32(self.serial)?;
        w.write_u32(self.refresh)?;
        w.write_u32(self.retry)?;
        w.write_u32(self.expire)?;
        w.write_u32(self.minimum)
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> ProtoResult<Self> {
        Ok(Soa {
            mname: Name::decode(r)?,
            rname: Name::decode(r)?,
            serial: r.read_u32()?,
            refresh: r.read_u32()?,
            retry: r.read_u32()?,
            expire: r.read_u32()?,
            minimum: r.read_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let soa = Soa::new(
            Name::parse("ns1.dns.nl").unwrap(),
            Name::parse("hostmaster.dns.nl").unwrap(),
            2017041200,
            3600,
            600,
            2419200,
            300,
        );
        let mut w = WireWriter::new();
        let mut c = NameCompressor::new();
        soa.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Soa::decode(&mut r).unwrap(), soa);
    }

    #[test]
    fn truncated_fails() {
        let mut w = WireWriter::new();
        let mut c = NameCompressor::new();
        let soa = Soa::new(Name::root(), Name::root(), 1, 2, 3, 4, 5);
        soa.encode(&mut w, &mut c).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..bytes.len() - 1]);
        assert!(Soa::decode(&mut r).is_err());
    }
}
