//! The 12-octet DNS message header (RFC 1035 §4.1.1).

use crate::error::ProtoResult;
use crate::types::{Opcode, Rcode};
use crate::wire::{WireReader, WireWriter};

/// Parsed DNS header: ID, flags, and the four section counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Query identifier, echoed in responses.
    pub id: u16,
    /// `QR`: true for responses.
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// `AA`: answer is authoritative.
    pub authoritative: bool,
    /// `TC`: message was truncated.
    pub truncated: bool,
    /// `RD`: recursion desired.
    pub recursion_desired: bool,
    /// `RA`: recursion available.
    pub recursion_available: bool,
    /// The three reserved bits between RA and RCODE (Z, and the bits
    /// DNSSEC later assigned as AD/CD). RFC 1035 says Z "must be zero",
    /// but real recursives set AD/CD freely, so we preserve the bits
    /// verbatim: decode masks them out of the flags word and encode
    /// re-emits them, making decode→encode a byte identity.
    pub zbits: u8,
    /// Response code.
    pub rcode: Rcode,
    /// Entries in the question section.
    pub qdcount: u16,
    /// Entries in the answer section.
    pub ancount: u16,
    /// Entries in the authority section.
    pub nscount: u16,
    /// Entries in the additional section.
    pub arcount: u16,
}

impl Default for Header {
    fn default() -> Self {
        Header {
            id: 0,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: false,
            recursion_available: false,
            zbits: 0,
            rcode: Rcode::NoError,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 0,
        }
    }
}

impl Header {
    /// Wire size of the header.
    pub const WIRE_LEN: usize = 12;

    /// Encodes the header.
    pub fn encode(&self, w: &mut WireWriter) -> ProtoResult<()> {
        w.write_u16(self.id)?;
        let mut flags: u16 = 0;
        if self.response {
            flags |= 0x8000;
        }
        flags |= (self.opcode.to_u8() as u16) << 11;
        if self.authoritative {
            flags |= 0x0400;
        }
        if self.truncated {
            flags |= 0x0200;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        if self.recursion_available {
            flags |= 0x0080;
        }
        flags |= ((self.zbits & 0x07) as u16) << 4;
        flags |= self.rcode.to_u8() as u16;
        w.write_u16(flags)?;
        w.write_u16(self.qdcount)?;
        w.write_u16(self.ancount)?;
        w.write_u16(self.nscount)?;
        w.write_u16(self.arcount)
    }

    /// Decodes the header.
    pub fn decode(r: &mut WireReader<'_>) -> ProtoResult<Self> {
        let id = r.read_u16()?;
        let flags = r.read_u16()?;
        Ok(Header {
            id,
            response: flags & 0x8000 != 0,
            opcode: Opcode::from_u8((flags >> 11) as u8),
            authoritative: flags & 0x0400 != 0,
            truncated: flags & 0x0200 != 0,
            recursion_desired: flags & 0x0100 != 0,
            recursion_available: flags & 0x0080 != 0,
            zbits: ((flags >> 4) & 0x07) as u8,
            rcode: Rcode::from_u8(flags as u8),
            qdcount: r.read_u16()?,
            ancount: r.read_u16()?,
            nscount: r.read_u16()?,
            arcount: r.read_u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_flags() {
        let h = Header {
            id: 0x1234,
            response: true,
            opcode: Opcode::Status,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            zbits: 0b101,
            rcode: Rcode::Refused,
            qdcount: 1,
            ancount: 2,
            nscount: 3,
            arcount: 4,
        };
        let mut w = WireWriter::new();
        h.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), Header::WIRE_LEN);
        let mut r = WireReader::new(&bytes);
        assert_eq!(Header::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn round_trip_default() {
        let h = Header::default();
        let mut w = WireWriter::new();
        h.encode(&mut w).unwrap();
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(Header::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn decode_short_buffer_fails() {
        let mut r = WireReader::new(&[0; 11]);
        assert!(Header::decode(&mut r).is_err());
    }

    #[test]
    fn zbits_masked_on_decode_and_preserved_on_encode() {
        // A header with AD (0x0020) and CD (0x0010) set, as real
        // validating recursives send them.
        let mut bytes = [0u8; 12];
        bytes[2] = 0x01; // RD
        bytes[3] = 0x30; // AD | CD
        let h = Header::decode(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(h.zbits, 0b011);
        assert_eq!(h.rcode, Rcode::NoError);
        let mut w = WireWriter::new();
        h.encode(&mut w).unwrap();
        assert_eq!(w.as_slice(), &bytes);
    }

    /// Property (satellite of the transport-plane PR): for *any* 12-byte
    /// image, decode→encode is a byte identity — every flag bit,
    /// including the reserved Z/AD/CD bits, survives the round trip.
    #[test]
    fn qc_mutated_headers_round_trip_exactly() {
        detrand::qc::property("header_decode_encode_identity").cases(512).check(|g| {
            let mut bytes = [0u8; 12];
            for b in bytes.iter_mut() {
                *b = g.u8();
            }
            let h = Header::decode(&mut WireReader::new(&bytes)).unwrap();
            let mut w = WireWriter::new();
            h.encode(&mut w).unwrap();
            assert_eq!(w.as_slice(), &bytes, "header {h:?} did not re-encode to its wire image");
        });
    }
}
