//! The 12-octet DNS message header (RFC 1035 §4.1.1).

use crate::error::ProtoResult;
use crate::types::{Opcode, Rcode};
use crate::wire::{WireReader, WireWriter};

/// Parsed DNS header: ID, flags, and the four section counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Query identifier, echoed in responses.
    pub id: u16,
    /// `QR`: true for responses.
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// `AA`: answer is authoritative.
    pub authoritative: bool,
    /// `TC`: message was truncated.
    pub truncated: bool,
    /// `RD`: recursion desired.
    pub recursion_desired: bool,
    /// `RA`: recursion available.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Entries in the question section.
    pub qdcount: u16,
    /// Entries in the answer section.
    pub ancount: u16,
    /// Entries in the authority section.
    pub nscount: u16,
    /// Entries in the additional section.
    pub arcount: u16,
}

impl Default for Header {
    fn default() -> Self {
        Header {
            id: 0,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: false,
            recursion_available: false,
            rcode: Rcode::NoError,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 0,
        }
    }
}

impl Header {
    /// Wire size of the header.
    pub const WIRE_LEN: usize = 12;

    /// Encodes the header.
    pub fn encode(&self, w: &mut WireWriter) -> ProtoResult<()> {
        w.write_u16(self.id)?;
        let mut flags: u16 = 0;
        if self.response {
            flags |= 0x8000;
        }
        flags |= (self.opcode.to_u8() as u16) << 11;
        if self.authoritative {
            flags |= 0x0400;
        }
        if self.truncated {
            flags |= 0x0200;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        if self.recursion_available {
            flags |= 0x0080;
        }
        flags |= self.rcode.to_u8() as u16;
        w.write_u16(flags)?;
        w.write_u16(self.qdcount)?;
        w.write_u16(self.ancount)?;
        w.write_u16(self.nscount)?;
        w.write_u16(self.arcount)
    }

    /// Decodes the header.
    pub fn decode(r: &mut WireReader<'_>) -> ProtoResult<Self> {
        let id = r.read_u16()?;
        let flags = r.read_u16()?;
        Ok(Header {
            id,
            response: flags & 0x8000 != 0,
            opcode: Opcode::from_u8((flags >> 11) as u8),
            authoritative: flags & 0x0400 != 0,
            truncated: flags & 0x0200 != 0,
            recursion_desired: flags & 0x0100 != 0,
            recursion_available: flags & 0x0080 != 0,
            rcode: Rcode::from_u8(flags as u8),
            qdcount: r.read_u16()?,
            ancount: r.read_u16()?,
            nscount: r.read_u16()?,
            arcount: r.read_u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_flags() {
        let h = Header {
            id: 0x1234,
            response: true,
            opcode: Opcode::Status,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            rcode: Rcode::Refused,
            qdcount: 1,
            ancount: 2,
            nscount: 3,
            arcount: 4,
        };
        let mut w = WireWriter::new();
        h.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), Header::WIRE_LEN);
        let mut r = WireReader::new(&bytes);
        assert_eq!(Header::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn round_trip_default() {
        let h = Header::default();
        let mut w = WireWriter::new();
        h.encode(&mut w).unwrap();
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(Header::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn decode_short_buffer_fails() {
        let mut r = WireReader::new(&[0; 11]);
        assert!(Header::decode(&mut r).is_err());
    }
}
