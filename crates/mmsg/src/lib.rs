//! # dnswild-mmsg
//!
//! The thin syscall shim under the serving plane's batched hot path:
//! `SO_REUSEPORT` socket binds (so every worker owns a private kernel
//! receive queue on the same port) and `recvmmsg`/`sendmmsg` batched
//! datagram I/O (so a worker pays one syscall per *batch* instead of
//! one per packet).
//!
//! Everything `dnswild-netio` needs from the kernel beyond what
//! `std::net::UdpSocket` exposes lives here, behind three design rules:
//!
//! * **Hermetic.** No `libc` crate: the four symbols the shim calls
//!   (`socket`/`bind`/`setsockopt` for the reuseport bind,
//!   `recvmmsg`/`sendmmsg` for batching) are declared directly — std
//!   already links the C library, so this adds no dependency and keeps
//!   the workspace's path-only build policy intact.
//! * **Feature-gated.** All unsafe FFI sits behind
//!   `cfg(all(target_os = "linux", feature = "mmsg"))`. Built without
//!   the `mmsg` feature (or off Linux) the crate contains no unsafe
//!   code at all and every entry point reports
//!   [`std::io::ErrorKind::Unsupported`], so callers fall back to the
//!   std `recv_from`/`send_to` loop.
//! * **Runtime-selected.** [`available`] probes the running kernel once
//!   (a real `recvmmsg` on a throwaway socket) so a binary compiled
//!   with the shim still degrades gracefully on kernels or sandboxes
//!   that refuse the syscall.
//!
//! The shim is deliberately *thin*: no retry policy, no accounting, no
//! partial-send handling — `dnswild-netio::server` owns those, because
//! they must behave identically on the std fallback path.

#![cfg_attr(not(all(target_os = "linux", feature = "mmsg")), forbid(unsafe_code))]
#![warn(missing_docs)]

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Whether the FFI shim was compiled in (Linux with the `mmsg`
/// feature). When `false`, [`available`] is `false` and every call
/// returns [`io::ErrorKind::Unsupported`].
pub const COMPILED: bool = cfg!(all(target_os = "linux", feature = "mmsg"));

/// Largest batch a [`RecvBatch`] will carry — one `mmsghdr` page's
/// worth; beyond this the syscall amortisation has long flattened out.
pub const BATCH_MAX: usize = 64;

#[cfg(all(target_os = "linux", feature = "mmsg"))]
mod sys {
    //! The Linux implementation: hand-declared ABI structs and the
    //! four libc wrappers. Layouts match the x86_64/aarch64 kernel ABI
    //! (`struct msghdr` with `size_t` iov/control lengths, 128-byte
    //! 8-aligned `sockaddr_storage`); `#[repr(C)]` reproduces the same
    //! padding the C compiler inserts.

    use super::*;
    use std::os::fd::{AsRawFd, FromRawFd};
    use std::sync::OnceLock;

    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    const SOCK_DGRAM: i32 = 2;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_REUSEPORT: i32 = 15;
    /// `recvmmsg` flag: block (per the socket's timeout) for the first
    /// datagram only, then drain whatever else is queued non-blocking.
    const MSG_WAITFORONE: i32 = 0x10000;
    const ENOSYS: i32 = 38;

    const SS_SIZE: usize = 128;
    const SOCKADDR_IN_LEN: u32 = 16;
    const SOCKADDR_IN6_LEN: u32 = 28;

    /// `struct sockaddr_storage`: an opaque 128-byte, 8-aligned blob;
    /// the leading `u16` is the address family in native byte order.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    struct SockAddrStorage {
        data: [u8; SS_SIZE],
    }

    impl SockAddrStorage {
        fn zeroed() -> SockAddrStorage {
            SockAddrStorage { data: [0; SS_SIZE] }
        }
    }

    /// `struct iovec`.
    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    /// `struct msghdr` (the control fields stay null/zero: the shim
    /// never touches ancillary data).
    #[repr(C)]
    struct MsgHdr {
        msg_name: *mut SockAddrStorage,
        msg_namelen: u32,
        msg_iov: *mut IoVec,
        msg_iovlen: usize,
        msg_control: *mut u8,
        msg_controllen: usize,
        msg_flags: i32,
    }

    /// `struct mmsghdr`: one `msghdr` plus the kernel-filled datagram
    /// length.
    #[repr(C)]
    struct MMsgHdr {
        msg_hdr: MsgHdr,
        msg_len: u32,
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(sockfd: i32, addr: *const SockAddrStorage, addrlen: u32) -> i32;
        fn setsockopt(
            sockfd: i32,
            level: i32,
            optname: i32,
            optval: *const i32,
            optlen: u32,
        ) -> i32;
        fn close(fd: i32) -> i32;
        fn recvmmsg(
            sockfd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut u8,
        ) -> i32;
        fn sendmmsg(sockfd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    }

    /// Serialises a [`SocketAddr`] into kernel `sockaddr_in{,6}` form,
    /// returning the populated length.
    fn write_sockaddr(addr: &SocketAddr, out: &mut SockAddrStorage) -> u32 {
        out.data = [0; SS_SIZE];
        match addr {
            SocketAddr::V4(v4) => {
                out.data[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                out.data[2..4].copy_from_slice(&v4.port().to_be_bytes());
                out.data[4..8].copy_from_slice(&v4.ip().octets());
                SOCKADDR_IN_LEN
            }
            SocketAddr::V6(v6) => {
                out.data[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                out.data[2..4].copy_from_slice(&v6.port().to_be_bytes());
                // sin6_flowinfo (bytes 4..8) stays zero.
                out.data[8..24].copy_from_slice(&v6.ip().octets());
                out.data[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                SOCKADDR_IN6_LEN
            }
        }
    }

    /// Parses a kernel-filled `sockaddr_storage` back into a
    /// [`SocketAddr`]. An unrecognised family yields the unspecified
    /// v4 address, so a (never-expected) parse failure surfaces as a
    /// counted send error rather than a lost packet.
    fn read_sockaddr(stor: &SockAddrStorage) -> SocketAddr {
        let family = u16::from_ne_bytes([stor.data[0], stor.data[1]]);
        let port = u16::from_be_bytes([stor.data[2], stor.data[3]]);
        if family == AF_INET {
            let ip: [u8; 4] = stor.data[4..8].try_into().expect("4 bytes");
            SocketAddr::from((ip, port))
        } else if family == AF_INET6 {
            let ip: [u8; 16] = stor.data[8..24].try_into().expect("16 bytes");
            SocketAddr::from((ip, port))
        } else {
            SocketAddr::from(([0, 0, 0, 0], 0))
        }
    }

    /// Binds a UDP socket with `SO_REUSEPORT` set *before* the bind, so
    /// any number of workers can own sibling sockets on one port and
    /// the kernel flow-hashes inbound datagrams across them.
    pub fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
        let family = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
        // SAFETY: plain fd-returning syscall; the fd is either handed
        // to `UdpSocket::from_raw_fd` (which owns closing it) or closed
        // on the error paths below.
        let fd = unsafe { socket(i32::from(family), SOCK_DGRAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let close_err = |fd: i32| {
            let e = io::Error::last_os_error();
            // SAFETY: fd came from `socket` above and was not yet
            // transferred to an owning type.
            unsafe { close(fd) };
            Err(e)
        };
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            let one: i32 = 1;
            // SAFETY: optval points at a live i32 of the advertised
            // 4-byte length.
            if unsafe { setsockopt(fd, SOL_SOCKET, opt, &one, 4) } < 0 {
                return close_err(fd);
            }
        }
        let mut stor = SockAddrStorage::zeroed();
        let len = write_sockaddr(&addr, &mut stor);
        // SAFETY: stor is a live, correctly-sized sockaddr_storage.
        if unsafe { bind(fd, &stor, len) } < 0 {
            return close_err(fd);
        }
        // SAFETY: fd is a freshly created, successfully bound UDP
        // socket owned by nobody else.
        Ok(unsafe { UdpSocket::from_raw_fd(fd) })
    }

    /// Reusable receive-side state for one worker: datagram buffers,
    /// peer-address slots and the `mmsghdr` array `recvmmsg` fills.
    ///
    /// Holds raw pointers internally (rebuilt before every syscall), so
    /// it is intentionally `!Send` — each worker constructs its own.
    pub struct RecvBatch {
        bufs: Vec<Vec<u8>>,
        names: Vec<SockAddrStorage>,
        hdrs: Vec<MMsgHdr>,
        iovs: Vec<IoVec>,
        lens: Vec<usize>,
        filled: usize,
    }

    impl RecvBatch {
        /// State for up to `capacity` datagrams of `buf_len` bytes each
        /// (capacity is clamped to `1..=BATCH_MAX`).
        pub fn new(capacity: usize, buf_len: usize) -> RecvBatch {
            let capacity = capacity.clamp(1, BATCH_MAX);
            RecvBatch {
                bufs: (0..capacity).map(|_| vec![0u8; buf_len.max(64)]).collect(),
                names: vec![SockAddrStorage::zeroed(); capacity],
                hdrs: Vec::with_capacity(capacity),
                iovs: Vec::with_capacity(capacity),
                lens: vec![0; capacity],
                filled: 0,
            }
        }

        /// The batch ceiling this state was built for.
        pub fn capacity(&self) -> usize {
            self.bufs.len()
        }

        /// Datagrams filled by the last successful [`recv_batch`].
        pub fn filled(&self) -> usize {
            self.filled
        }

        /// The `i`-th received datagram and its sender (valid for
        /// `i < filled()`).
        pub fn datagram(&self, i: usize) -> (&[u8], SocketAddr) {
            assert!(i < self.filled, "datagram index past the filled count");
            (&self.bufs[i][..self.lens[i]], read_sockaddr(&self.names[i]))
        }
    }

    /// Receives up to `batch.capacity()` datagrams in one `recvmmsg`
    /// call. Blocks for the *first* datagram only (honouring the
    /// socket's read timeout — `MSG_WAITFORONE`); the rest of the batch
    /// is whatever was already queued. Returns the datagram count;
    /// timeout surfaces as `WouldBlock`/`TimedOut` exactly like
    /// `recv_from`.
    pub fn recv_batch(sock: &UdpSocket, batch: &mut RecvBatch) -> io::Result<usize> {
        batch.filled = 0;
        let n = batch.bufs.len();
        batch.hdrs.clear();
        batch.iovs.clear();
        for i in 0..n {
            batch.iovs.push(IoVec { base: batch.bufs[i].as_mut_ptr(), len: batch.bufs[i].len() });
        }
        for i in 0..n {
            batch.names[i] = SockAddrStorage::zeroed();
            batch.hdrs.push(MMsgHdr {
                msg_hdr: MsgHdr {
                    msg_name: &mut batch.names[i],
                    msg_namelen: SS_SIZE as u32,
                    msg_iov: &mut batch.iovs[i],
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            });
        }
        // SAFETY: every pointer in hdrs was rebuilt just above and
        // targets buffers owned by `batch`, which outlives the call; no
        // Vec is touched between pointer setup and the syscall.
        let got = unsafe {
            recvmmsg(
                sock.as_raw_fd(),
                batch.hdrs.as_mut_ptr(),
                n as u32,
                MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if got < 0 {
            return Err(io::Error::last_os_error());
        }
        let got = got as usize;
        for i in 0..got {
            batch.lens[i] = (batch.hdrs[i].msg_len as usize).min(batch.bufs[i].len());
        }
        batch.filled = got;
        Ok(got)
    }

    /// Reusable send-side scratch (address/iovec/header arrays).
    #[derive(Default)]
    pub struct SendScratch {
        names: Vec<(SockAddrStorage, u32)>,
        iovs: Vec<IoVec>,
        hdrs: Vec<MMsgHdr>,
    }

    /// Sends `msgs` in one `sendmmsg` call. Returns how many of the
    /// *leading* messages the kernel accepted — `k < msgs.len()` is a
    /// legal partial send the caller must resume from `msgs[k..]`; an
    /// `Err` means the first message failed and nothing was sent.
    pub fn send_batch(
        sock: &UdpSocket,
        msgs: &[(&[u8], SocketAddr)],
        scratch: &mut SendScratch,
    ) -> io::Result<usize> {
        if msgs.is_empty() {
            return Ok(0);
        }
        scratch.names.clear();
        scratch.iovs.clear();
        scratch.hdrs.clear();
        for (payload, peer) in msgs {
            let mut stor = SockAddrStorage::zeroed();
            let len = write_sockaddr(peer, &mut stor);
            scratch.names.push((stor, len));
            scratch.iovs.push(IoVec { base: payload.as_ptr().cast_mut(), len: payload.len() });
        }
        // Headers are built only after names/iovs stopped growing, so
        // the pointers below cannot be invalidated by a reallocation.
        for i in 0..msgs.len() {
            let (stor, len) = &mut scratch.names[i];
            scratch.hdrs.push(MMsgHdr {
                msg_hdr: MsgHdr {
                    msg_name: stor,
                    msg_namelen: *len,
                    msg_iov: &mut scratch.iovs[i],
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            });
        }
        // SAFETY: hdrs points into scratch (alive for the call) and the
        // payload slices borrowed by iovs outlive `msgs`.
        let sent = unsafe {
            sendmmsg(sock.as_raw_fd(), scratch.hdrs.as_mut_ptr(), msgs.len() as u32, 0)
        };
        if sent < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((sent as usize).min(msgs.len()))
    }

    /// One-time runtime probe: bind a throwaway reuseport socket and
    /// issue a non-blocking `recvmmsg`. `EAGAIN` proves the syscall
    /// exists; `ENOSYS` (or any setup failure) means the kernel or
    /// sandbox refuses it and the serving plane must fall back to std.
    pub fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            let Ok(sock) = bind_reuseport("127.0.0.1:0".parse().expect("static addr")) else {
                return false;
            };
            if sock.set_nonblocking(true).is_err() {
                return false;
            }
            let mut batch = RecvBatch::new(1, 64);
            match recv_batch(&sock, &mut batch) {
                Ok(_) => true,
                Err(e) if e.raw_os_error() == Some(ENOSYS) => false,
                Err(e) => e.kind() == io::ErrorKind::WouldBlock,
            }
        })
    }
}

#[cfg(all(target_os = "linux", feature = "mmsg"))]
pub use sys::{available, bind_reuseport, recv_batch, send_batch, RecvBatch, SendScratch};

#[cfg(not(all(target_os = "linux", feature = "mmsg")))]
mod sys {
    //! The stub arm: no unsafe code, every entry point `Unsupported`.
    //! Types mirror the Linux arm so callers compile unchanged.

    use super::*;

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "mmsg shim not compiled for this target")
    }

    /// Stub: batched receive state (never fillable on this target).
    pub struct RecvBatch {
        capacity: usize,
    }

    impl RecvBatch {
        /// Stub constructor; `recv_batch` on this state always fails.
        pub fn new(capacity: usize, _buf_len: usize) -> RecvBatch {
            RecvBatch { capacity: capacity.clamp(1, BATCH_MAX) }
        }

        /// The configured (never reachable) batch ceiling.
        pub fn capacity(&self) -> usize {
            self.capacity
        }

        /// Always zero on this target.
        pub fn filled(&self) -> usize {
            0
        }

        /// Unreachable on this target (`filled` is always zero).
        pub fn datagram(&self, _i: usize) -> (&[u8], SocketAddr) {
            panic!("mmsg shim not compiled for this target")
        }
    }

    /// Stub send scratch.
    #[derive(Default)]
    pub struct SendScratch {}

    /// Always `Unsupported` on this target.
    pub fn bind_reuseport(_addr: SocketAddr) -> io::Result<UdpSocket> {
        Err(unsupported())
    }

    /// Always `Unsupported` on this target.
    pub fn recv_batch(_sock: &UdpSocket, _batch: &mut RecvBatch) -> io::Result<usize> {
        Err(unsupported())
    }

    /// Always `Unsupported` on this target.
    pub fn send_batch(
        _sock: &UdpSocket,
        _msgs: &[(&[u8], SocketAddr)],
        _scratch: &mut SendScratch,
    ) -> io::Result<usize> {
        Err(unsupported())
    }

    /// Always `false` on this target.
    pub fn available() -> bool {
        false
    }
}

#[cfg(not(all(target_os = "linux", feature = "mmsg")))]
pub use sys::{available, bind_reuseport, recv_batch, send_batch, RecvBatch, SendScratch};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_is_consistent_with_compilation() {
        if !COMPILED {
            assert!(!available(), "stub arm must never report availability");
        }
        // On Linux with the feature on, `available()` may still be
        // false under an exotic sandbox — only the implication above is
        // universal.
    }

    #[cfg(all(target_os = "linux", feature = "mmsg"))]
    mod linux {
        use super::super::*;
        use std::time::Duration;

        #[test]
        fn reuseport_binds_share_a_port() {
            if !available() {
                eprintln!("skipping: mmsg unavailable at runtime");
                return;
            }
            let a = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
            let port = a.local_addr().unwrap().port();
            let b = bind_reuseport(format!("127.0.0.1:{port}").parse().unwrap())
                .expect("second reuseport bind on the same port");
            assert_eq!(b.local_addr().unwrap().port(), port);
        }

        #[test]
        fn batch_round_trip_preserves_payloads_and_peers() {
            if !available() {
                eprintln!("skipping: mmsg unavailable at runtime");
                return;
            }
            let server = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
            server.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let server_addr = server.local_addr().unwrap();
            let client = UdpSocket::bind("127.0.0.1:0").unwrap();
            client.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let client_addr = client.local_addr().unwrap();

            // Queue several datagrams, then drain them in one batch.
            let payloads: Vec<Vec<u8>> =
                (0u8..5).map(|i| vec![i; 3 + usize::from(i)]).collect();
            for p in &payloads {
                client.send_to(p, server_addr).unwrap();
            }
            let mut batch = RecvBatch::new(8, 1500);
            let mut seen: Vec<Vec<u8>> = Vec::new();
            while seen.len() < payloads.len() {
                let n = recv_batch(&server, &mut batch).expect("recv batch");
                assert!(n >= 1);
                for i in 0..n {
                    let (bytes, peer) = batch.datagram(i);
                    assert_eq!(peer, client_addr);
                    seen.push(bytes.to_vec());
                }
            }
            assert_eq!(seen, payloads, "payloads arrive whole and in order on loopback");

            // Send a batch of responses back through sendmmsg.
            let responses: Vec<Vec<u8>> = seen.iter().map(|p| {
                let mut r = p.clone();
                r.push(0xAA);
                r
            }).collect();
            let msgs: Vec<(&[u8], SocketAddr)> =
                responses.iter().map(|r| (r.as_slice(), client_addr)).collect();
            let mut scratch = SendScratch::default();
            let mut off = 0;
            while off < msgs.len() {
                off += send_batch(&server, &msgs[off..], &mut scratch).expect("send batch");
            }
            let mut buf = [0u8; 64];
            for want in &responses {
                let (n, from) = client.recv_from(&mut buf).unwrap();
                assert_eq!(from, server_addr);
                assert_eq!(&buf[..n], want.as_slice());
            }
        }

        #[test]
        fn recv_batch_times_out_like_recv_from() {
            if !available() {
                eprintln!("skipping: mmsg unavailable at runtime");
                return;
            }
            let sock = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
            sock.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
            let mut batch = RecvBatch::new(4, 512);
            let err = recv_batch(&sock, &mut batch).expect_err("nothing to receive");
            assert!(
                matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut),
                "timeout surfaced as {err:?}"
            );
            assert_eq!(batch.filled(), 0);
        }
    }
}
