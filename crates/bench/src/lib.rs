//! Benchmark support crate: a small wall-clock bench runner replacing
//! `criterion`.
//!
//! Benches are ordinary binaries under `src/bin/` (so `cargo build
//! --release` compiles them and they need no registry access or
//! `[[bench]]` wiring). Each binary builds a [`Runner`] and registers
//! closures:
//!
//! ```no_run
//! use dnswild_bench::{black_box, Runner};
//!
//! let mut r = Runner::from_env("example");
//! r.bench("sum", || black_box((0..1000u64).sum::<u64>()));
//! r.finish();
//! ```
//!
//! Per bench the runner does a warmup phase, then times individual
//! iterations and reports min / median / p99 / max wall-clock times,
//! both human-readable on stderr and as one JSON object per bench on
//! stdout (machine-diffable across commits).
//!
//! Environment knobs: `BENCH_WARMUP_MS` (default 200),
//! `BENCH_SAMPLES` (default 200 timed iterations),
//! `BENCH_FILTER` (substring; skip benches that don't match).

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Summary statistics for one bench, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    pub name: String,
    pub samples: usize,
    pub min_ns: u128,
    pub median_ns: u128,
    pub p99_ns: u128,
    pub max_ns: u128,
}

impl Stats {
    /// Summarises externally collected nanosecond samples (e.g. the
    /// per-query latencies of `dnswild-netio`'s load generator) into the
    /// same min/median/p99/max shape the runner produces, so external
    /// measurements share the JSON report format. Panics on an empty
    /// sample set.
    pub fn from_ns_samples(name: &str, ns: Vec<u128>) -> Stats {
        assert!(!ns.is_empty(), "no samples for bench '{name}'");
        Stats::from_samples(name, ns)
    }

    fn from_samples(name: &str, mut ns: Vec<u128>) -> Stats {
        ns.sort_unstable();
        // Shared estimator: same interpolation as the analysis figures
        // and the netio load reports.
        let pick = |q: f64| {
            dnswild_telemetry::stats::percentile_sorted_u128(&ns, q * 100.0)
                .expect("samples are non-empty")
        };
        Stats {
            name: name.to_string(),
            samples: ns.len(),
            min_ns: ns[0],
            median_ns: pick(0.5),
            p99_ns: pick(0.99),
            max_ns: *ns.last().unwrap(),
        }
    }

    /// One JSON object, hand-rolled: the values are integers and the
    /// name is a bench identifier, so no escaping machinery is needed.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"samples\":{},\"min_ns\":{},\"median_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.name.replace('"', "'"),
            self.samples,
            self.min_ns,
            self.median_ns,
            self.p99_ns,
            self.max_ns
        )
    }
}

fn human(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Collects and runs benches for one binary.
pub struct Runner {
    group: String,
    warmup: Duration,
    samples: usize,
    samples_pinned_by_env: bool,
    filter: Option<String>,
    results: Vec<Stats>,
}

impl Runner {
    /// A runner with explicit settings.
    pub fn new(group: &str, warmup: Duration, samples: usize) -> Runner {
        Runner {
            group: group.to_string(),
            warmup,
            samples: samples.max(1),
            samples_pinned_by_env: false,
            filter: None,
            results: Vec::new(),
        }
    }

    /// A runner configured from the environment (see module docs).
    pub fn from_env(group: &str) -> Runner {
        let warmup_ms = std::env::var("BENCH_WARMUP_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        let env_samples: Option<usize> =
            std::env::var("BENCH_SAMPLES").ok().and_then(|v| v.parse().ok());
        let mut r =
            Runner::new(group, Duration::from_millis(warmup_ms), env_samples.unwrap_or(200));
        r.samples_pinned_by_env = env_samples.is_some();
        r.filter = std::env::var("BENCH_FILTER").ok();
        r
    }

    /// Lowers the sample count for subsequent (expensive) benches. An
    /// explicit `BENCH_SAMPLES` in the environment still wins.
    pub fn set_samples(&mut self, samples: usize) {
        if !self.samples_pinned_by_env {
            self.samples = samples.max(1);
        }
    }

    /// Times `f`, one closure call per sample. The closure's return
    /// value is passed through [`black_box`] so the computation is not
    /// optimised away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> Option<&Stats> {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }
        // Warmup: run until the warmup budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let mut ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            ns.push(t.elapsed().as_nanos());
        }
        let stats = Stats::from_samples(name, ns);
        eprintln!(
            "{}/{:<40} min {:>10}  median {:>10}  p99 {:>10}  max {:>10}",
            self.group,
            stats.name,
            human(stats.min_ns),
            human(stats.median_ns),
            human(stats.p99_ns),
            human(stats.max_ns)
        );
        self.results.push(stats);
        self.results.last()
    }

    /// Registers externally collected stats (see
    /// [`Stats::from_ns_samples`]) alongside the runner's own timings:
    /// same stderr line, same JSON report line from [`Runner::finish`].
    pub fn record(&mut self, stats: Stats) {
        if let Some(filter) = &self.filter {
            if !stats.name.contains(filter.as_str()) {
                return;
            }
        }
        eprintln!(
            "{}/{:<40} min {:>10}  median {:>10}  p99 {:>10}  max {:>10}",
            self.group,
            stats.name,
            human(stats.min_ns),
            human(stats.median_ns),
            human(stats.p99_ns),
            human(stats.max_ns)
        );
        self.results.push(stats);
    }

    /// Emits the JSON report (one line per bench) on stdout.
    pub fn finish(self) {
        for s in &self.results {
            println!("{}", s.to_json());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_order_holds() {
        let s = Stats::from_samples("x", vec![5, 1, 9, 3, 7]);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.median_ns, 5);
        assert_eq!(s.max_ns, 9);
        assert!(s.p99_ns <= s.max_ns && s.p99_ns >= s.median_ns);
    }

    #[test]
    fn runner_produces_stats_and_json() {
        let mut r = Runner::new("test", Duration::from_millis(1), 10);
        let stats = r.bench("noop", || 1 + 1).expect("not filtered").clone();
        assert_eq!(stats.samples, 10);
        let json = stats.to_json();
        assert!(json.starts_with("{\"name\":\"noop\""), "{json}");
        assert!(json.contains("\"median_ns\":"), "{json}");
    }

    #[test]
    fn external_samples_summarised_like_runner_output() {
        let s = Stats::from_ns_samples("blast_latency", vec![40, 10, 30, 20]);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 40);
        assert_eq!(s.samples, 4);
        let mut r = Runner::new("test", Duration::from_millis(1), 5);
        r.record(s);
        assert_eq!(r.results.len(), 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut r = Runner::new("test", Duration::from_millis(1), 5);
        r.filter = Some("match".to_string());
        assert!(r.bench("other", || ()).is_none());
        assert!(r.bench("match_this", || ()).is_some());
    }
}
