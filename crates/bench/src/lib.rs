//! Benchmark support crate.
