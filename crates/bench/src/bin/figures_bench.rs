//! One benchmark per paper artifact: each regenerates a scaled-down
//! version of the table/figure pipeline end to end (deployment →
//! measurement → analysis), so the bench run exercises every
//! reproduction path and tracks its cost.
//!
//! Scale note: populations here are tiny (tens of VPs) to keep
//! iterations fast; the `exp_*` binaries run the full-scale versions.

use dnswild_bench::{black_box, Runner};

use dnswild::analysis::{
    coverage, interval_sweep, preference, query_share, rank_profile, rtt_sensitivity,
};
use dnswild::guidance::{compare, demo_pair};
use dnswild::production::{run_production, ProductionConfig};
use dnswild::{Experiment, PolicyMix, SimDuration, StandardConfig};

fn small(config: StandardConfig, seed: u64) -> dnswild::Report {
    Experiment::standard(config, seed).vantage_points(30).rounds(8).run()
}

fn main() {
    let mut r = Runner::from_env("figures");
    // Whole-pipeline benches are expensive; a criterion-style 200-sample
    // run would take minutes per bench.
    r.set_samples(20);

    r.bench("table1_deployments", || {
        for config in StandardConfig::ALL {
            black_box(config.deployment());
        }
    });

    r.bench("fig2_coverage_pipeline", || {
        let report = small(StandardConfig::C2A, 1);
        black_box(coverage(&report.result))
    });

    r.bench("fig3_share_pipeline", || {
        let report = small(StandardConfig::C2C, 2);
        black_box(query_share(&report.result))
    });

    r.bench("fig4_table2_preference_pipeline", || {
        let report = small(StandardConfig::C2B, 3);
        black_box(preference(&report.result))
    });

    r.bench("fig5_sensitivity_pipeline", || {
        let report = small(StandardConfig::C2B, 4);
        black_box(rtt_sensitivity(&report.result))
    });

    r.bench("fig6_interval_pipeline", || {
        let fast = Experiment::standard(StandardConfig::C2C, 5)
            .vantage_points(20)
            .rounds(6)
            .interval(SimDuration::from_mins(2))
            .run();
        let slow = Experiment::standard(StandardConfig::C2C, 5)
            .vantage_points(20)
            .rounds(6)
            .interval(SimDuration::from_mins(30))
            .run();
        let results = vec![(2u64, &fast.result), (30u64, &slow.result)];
        black_box(interval_sweep(&results, "FRA"))
    });

    r.set_samples(10);
    r.bench("fig7_production_pipeline", || {
        let mut cfg = ProductionConfig::root(25, 6);
        cfg.queries_per_client = 300;
        let result = run_production(&cfg);
        black_box(rank_profile(&result.per_client_counts, 10, 250))
    });

    r.bench("guidance_compare_pipeline", || {
        let (mixed, all) = demo_pair();
        black_box(compare(vec![mixed, all], 25, 6, 7, &PolicyMix::default()))
    });

    r.finish();
}
