//! Zone-lookup and server query-handling benchmarks: the per-query cost
//! on the authoritative side, which bounds how fast measurements run.

use dnswild_bench::{black_box, Runner};
use std::any::Any;

use dnswild_netsim::geo::datacenters;
use dnswild_netsim::{
    Actor, Context, Datagram, HostConfig, LatencyConfig, SimDuration, Simulator,
};
use dnswild_proto::{Message, Name, RData, RType, Record};
use dnswild_server::AuthoritativeServer;
use dnswild_zone::presets::test_domain_zone;
use dnswild_zone::{parse_zone, write_zone, Lookup, Zone};

fn big_zone(hosts: usize) -> Zone {
    let origin = Name::parse("bench.test").unwrap();
    let mut zone = test_domain_zone(&origin, 2);
    for i in 0..hosts {
        zone.insert(Record::new(
            origin.prepend(&format!("host-{i}")).unwrap(),
            300,
            RData::A(dnswild_proto::rdata::A::new(
                std::net::Ipv4Addr::new(192, 0, (i / 256) as u8, (i % 256) as u8),
            )),
        ));
    }
    zone
}

fn bench_zone_lookup(r: &mut Runner) {
    let zone = big_zone(2_000);
    let origin = Name::parse("bench.test").unwrap();
    let exact = origin.prepend("host-999").unwrap();
    let wildcard = origin.prepend("no-such-label-xyz").unwrap();
    let nxdomain = Name::parse("deep.under.host-1.bench.test").unwrap();

    r.bench("zone_lookup_exact_2k_rrsets", || {
        black_box(zone.lookup(black_box(&exact), RType::A))
    });
    r.bench("zone_lookup_wildcard_synthesis", || {
        let res = zone.lookup(black_box(&wildcard), RType::Txt);
        assert!(matches!(res, Lookup::Answer(_)));
        black_box(res)
    });
    r.bench("zone_lookup_nxdomain_walk", || {
        black_box(zone.lookup(black_box(&nxdomain), RType::A))
    });
}

fn bench_zone_parse_write(r: &mut Runner) {
    let zone = big_zone(500);
    let text = write_zone(&zone);
    let origin = Name::parse("bench.test").unwrap();
    r.bench("zone_write_500_rrsets", || black_box(write_zone(&zone)));
    r.bench("zone_parse_500_rrsets", || {
        black_box(parse_zone(black_box(&text), &origin).unwrap())
    });
}

/// Drives one query through a server actor inside a minimal simulation.
fn bench_server_query(r: &mut Runner) {
    struct Collector {
        target: dnswild_netsim::SimAddr,
        payload: Vec<u8>,
        got: u32,
    }
    impl Actor for Collector {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let own = ctx.own_addr();
            ctx.send(own, self.target, self.payload.clone());
        }
        fn on_datagram(&mut self, ctx: &mut Context<'_>, _d: Datagram) {
            self.got += 1;
            if self.got < 1_000 {
                let own = ctx.own_addr();
                ctx.send(own, self.target, self.payload.clone());
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    r.set_samples(20);
    r.bench("server_thousand_txt_queries_end_to_end", || {
        let mut sim = Simulator::with_latency(
            1,
            LatencyConfig { loss_rate: 0.0, jitter_mean_ms: 0.0, ..LatencyConfig::default() },
        );
        let origin = Name::parse("bench.test").unwrap();
        let sh = sim.add_host(
            HostConfig::at_place(&datacenters::FRA, SimDuration::from_millis(1), 1),
            Box::new(AuthoritativeServer::new("FRA", vec![big_zone(100)])),
        );
        let saddr = sim.bind_unicast(sh);
        let q = Message::iterative_query(1, origin.prepend("p").unwrap(), RType::Txt);
        let ch = sim.add_host(
            HostConfig::at_place(&datacenters::DUB, SimDuration::from_millis(1), 2),
            Box::new(Collector { target: saddr, payload: q.encode().unwrap(), got: 0 }),
        );
        sim.bind_unicast(ch);
        sim.run_until_idle();
        black_box(sim.stats().delivered)
    });
}

fn main() {
    let mut r = Runner::from_env("zone_server");
    bench_zone_lookup(&mut r);
    bench_zone_parse_write(&mut r);
    bench_server_query(&mut r);
    r.finish();
}
