//! Real-socket serving-plane benchmarks: closed-loop loopback
//! throughput of the `dnswild-netio` UDP front-end, and the encode
//! paths that bound its per-response cost.
//!
//! Unlike the other bench binaries these numbers involve the kernel's
//! UDP stack, so they are noisier — but they are the workspace's only
//! measurement of the *actual* serving plane rather than the simulated
//! one.

use std::sync::Arc;

use dnswild_bench::{black_box, Runner, Stats};
use dnswild_metrics::{Registry, Stage, StageClock, StageSpans};
use dnswild_netio::{
    assault, batch_io_available, blast, resolve, serve, write_frame, AttackConfig, AttackMode,
    CacheConfig, Collector, CollectorConfig, Direction, FaultPlan, FaultProfile, FrameReader,
    IoBackend, LoadConfig, QueryMix, ResolveConfig, ServeConfig, TcpOptions,
};
use dnswild_proto::rdata::Txt;
use dnswild_proto::{Message, Name, RData, RType, Rcode, Record};
use dnswild_server::{RateLimitPolicy, TruncationPolicy};
use dnswild_telemetry::{Event, EventKind};
use dnswild_zone::presets::{
    attack_test_domain_zone, padded_test_domain_zone, probe_ttl_test_domain_zone, test_domain_zone,
};

fn origin() -> Name {
    Name::parse("bench.test").unwrap()
}

/// Per-iteration cost of answering one query end to end over loopback
/// (closed loop, so one outstanding query: the latency floor). Returns
/// the bare mixed-blast median so the observability runs below can
/// report their overhead against it.
fn bench_loopback_round_trips(r: &mut Runner) -> Option<u128> {
    let zones = Arc::new(vec![test_domain_zone(&origin(), 2)]);
    let handle = serve(ServeConfig::new("127.0.0.1:0", "FRA", zones).threads(2))
        .expect("bind loopback");
    let addr = handle.local_addr();

    r.set_samples(30);
    r.bench("netio_blast_1k_probe_only", || {
        let report = blast(
            LoadConfig::new(addr, origin())
                .concurrency(2)
                .queries(1_000)
                .mix(QueryMix::probe_only()),
        )
        .expect("blast");
        assert!(report.all_answered(), "loopback run lost queries: {report:?}");
        black_box(report.received)
    });
    let bare_median = r
        .bench("netio_blast_1k_mixed", || {
            let report = blast(LoadConfig::new(addr, origin()).concurrency(4).queries(1_000))
                .expect("blast");
            assert!(report.all_answered(), "loopback run lost queries: {report:?}");
            black_box(report.received)
        })
        .map(|s| s.median_ns);

    // One larger run, reported through the same JSON pipeline: the
    // per-query latency distribution and achieved qps of a 10k blast.
    let report = blast(LoadConfig::new(addr, origin()).concurrency(4).queries(10_000))
        .expect("blast");
    assert!(report.all_answered(), "loopback run lost queries: {report:?}");
    eprintln!("netio/blast_10k achieved {:.0} qps", report.qps());
    r.record(Stats::from_ns_samples(
        "netio_query_latency_10k_mixed",
        report.latencies_ns().iter().map(|&ns| ns as u128).collect(),
    ));

    handle.shutdown();
    bare_median
}

/// Per-operation cost of the metrics hot path in isolation: one sharded
/// counter bump plus one log-histogram record (what a worker pays per
/// event), and the two span off-switches (runtime-disabled clock and
/// detached spans), which must stay at branch cost.
fn bench_metrics_record(r: &mut Runner) {
    let registry = Arc::new(Registry::new());
    let counter = registry.counter_with("bench_events_total", "bench counter", &[("k", "a")]);
    let hist = registry.histogram("bench_ns", "bench histogram");
    let spans = StageSpans::register(&registry);

    r.set_samples(200);
    let mut v = 0u64;
    r.bench("metrics_record_per_op", || {
        v = v.wrapping_add(4_097);
        counter.inc();
        hist.record(v & 0xfff_ffff);
        black_box(())
    });
    let mut off = StageClock::start(false);
    r.bench("metrics_disabled_span_lap_per_op", || {
        off.lap(Some(&spans), Stage::Engine);
        black_box(())
    });
    let mut on = StageClock::start(true);
    r.bench("metrics_detached_span_lap_per_op", || {
        on.lap(None, Stage::Engine);
        black_box(())
    });
    // Scrape-side aggregation cost (shard sum + bucket walk + render).
    r.bench("metrics_render_small_registry", || black_box(registry.render().len()));
}

/// The same closed-loop blast with both ends traced, then with tracing
/// *and* metrics (sharded counters + stage spans on every packet) — the
/// acceptance bar is that the fully observed run stays within ~10% of
/// the bare runs above; `telemetry_record_per_event` and
/// `metrics_record_per_op` bound the per-datagram costs.
fn bench_traced_blast(r: &mut Runner, bare_median: Option<u128>) {
    let trace_path = std::env::temp_dir().join("dnswild_netio_bench.dwtrace");
    let collector = Arc::new(
        Collector::start(CollectorConfig::new(&trace_path).auths(["FRA"]).ring_capacity(1 << 16))
            .expect("start collector"),
    );

    let zones = Arc::new(vec![test_domain_zone(&origin(), 2)]);
    let handle = serve(
        ServeConfig::new("127.0.0.1:0", "FRA", Arc::clone(&zones))
            .threads(2)
            .collector(Arc::clone(&collector), 0),
    )
    .expect("bind loopback");
    let addr = handle.local_addr();

    r.set_samples(30);
    r.bench("netio_blast_1k_mixed_traced", || {
        let report = blast(
            LoadConfig::new(addr, origin())
                .concurrency(4)
                .queries(1_000)
                .collector(Arc::clone(&collector), 0),
        )
        .expect("blast");
        assert!(report.all_answered(), "traced loopback run lost queries: {report:?}");
        black_box(report.received)
    });
    handle.shutdown();

    // Full observability: trace + registry counters + stage spans on the
    // server, trace + registry counters on the load generator.
    let registry = Arc::new(Registry::new());
    let handle = serve(
        ServeConfig::new("127.0.0.1:0", "FRA", zones)
            .threads(2)
            .collector(Arc::clone(&collector), 0)
            .metrics(Arc::clone(&registry)),
    )
    .expect("bind loopback");
    let addr = handle.local_addr();
    let metered = r
        .bench("netio_blast_1k_mixed_traced_metered", || {
            let report = blast(
                LoadConfig::new(addr, origin())
                    .concurrency(4)
                    .queries(1_000)
                    .collector(Arc::clone(&collector), 0)
                    .metrics(Arc::clone(&registry)),
            )
            .expect("blast");
            assert!(report.all_answered(), "metered loopback run lost queries: {report:?}");
            black_box(report.received)
        })
        .map(|s| s.median_ns);
    if let (Some(bare), Some(metered)) = (bare_median, metered) {
        let overhead = (metered as f64 / bare as f64 - 1.0) * 100.0;
        eprintln!(
            "netio/observability overhead: bare {bare} ns → traced+metered {metered} ns \
             per 1k blast ({overhead:+.1}%, bar is +10%)"
        );
    }

    handle.shutdown();
    let summary = collector.finish().expect("finish trace");
    assert_eq!(summary.overflow, 0, "ring overflow under bench load");
    eprintln!("netio/traced_blast captured {} events, 0 overflow", summary.events);
    let _ = std::fs::remove_file(&trace_path);
}

/// Per-event cost of the capture hot path alone: stamp a clock, fill
/// the fixed 40-byte record, push it through the SPSC ring.
fn bench_telemetry_record(r: &mut Runner) {
    let trace_path = std::env::temp_dir().join("dnswild_netio_bench_record.dwtrace");
    let collector = Collector::start(
        CollectorConfig::new(&trace_path).auths(["FRA"]).ring_capacity(1 << 16),
    )
    .expect("start collector");
    let producer = collector.producer();

    r.set_samples(200);
    let mut i = 0u64;
    r.bench("telemetry_record_per_event", || {
        i = i.wrapping_add(1);
        let mut ev = Event::new(EventKind::ServerQuery);
        ev.ts_ns = producer.now_ns();
        ev.client_hash = i;
        ev.qname_hash = i as u32;
        ev.latency_ns = 42_000;
        ev.bytes_in = 64;
        ev.bytes_out = 128;
        black_box(producer.record(&ev))
    });

    let summary = collector.finish().expect("finish trace");
    black_box(summary.events);
    let _ = std::fs::remove_file(&trace_path);
}

/// The encode paths feeding the hot loop: allocating vs. buffer-reuse.
fn bench_encode_paths(r: &mut Runner) {
    let zones = vec![test_domain_zone(&origin(), 2)];
    let mut engine = dnswild_server::AnswerEngine::new("FRA", zones);
    let query = Message::iterative_query(7, origin().prepend("p1-q1").unwrap(), RType::Txt);
    let payload = query.encode().unwrap();

    r.set_samples(200);
    let resp = {
        let mut buf = Vec::new();
        engine.handle_packet(&payload, dnswild_server::TransportKind::Udp, &mut buf);
        Message::decode(&buf).unwrap()
    };
    r.bench("response_encode_alloc", || black_box(resp.encode().unwrap()));
    let mut reuse = Vec::with_capacity(1024);
    r.bench("response_encode_into_reused_buf", || {
        resp.encode_into(&mut reuse).unwrap();
        black_box(reuse.len())
    });
    let mut resp_buf = Vec::with_capacity(1024);
    r.bench("engine_handle_packet_zero_alloc", || {
        let handled = engine.handle_packet(
            black_box(&payload),
            dnswild_server::TransportKind::Udp,
            &mut resp_buf,
        );
        black_box(handled.response)
    });
}

/// Per-datagram cost of the chaos plane's fault decision — the overhead
/// the proxy adds to every packet it carries (hash, occurrence lookup,
/// RNG draws, payload copy).
fn bench_chaos_decide(r: &mut Runner) {
    let profile = FaultProfile {
        drop: 0.06,
        dup: 0.02,
        corrupt: 0.01,
        truncate: 0.005,
        reorder: 0.05,
        delay_min_us: 0,
        delay_max_us: 20_000,
    };
    let plan = FaultPlan::new(2017, profile, profile);
    let query = Message::iterative_query(7, origin().prepend("p1-q1").unwrap(), RType::Txt);
    let payload = query.encode().unwrap();

    r.set_samples(200);
    let mut i = 0u64;
    r.bench("chaos_decide_per_datagram", || {
        // Vary the trailing bytes so the occurrence map grows the way it
        // does under real traffic (distinct attempts, not one hot key).
        i = i.wrapping_add(1);
        let mut bytes = payload.clone();
        bytes.extend_from_slice(&i.to_le_bytes());
        black_box(plan.decide(Direction::Forward, &bytes).len())
    });
}

/// The batch-ceiling sweep behind the sharded hot path: the same
/// 4k-query closed-loop blast against the std loop (the unbatched
/// baseline) and the mmsg loop at batch ceilings 1, 8 and 32. Besides
/// the usual JSON lines, the achieved throughput is written to
/// `results/netio_batch.txt` so the sweep survives next to the exp_*
/// outputs.
fn bench_batch_sweep(r: &mut Runner) {
    let zones = Arc::new(vec![test_domain_zone(&origin(), 2)]);
    let mut lines = vec![
        "# sharded hot path batch sweep — loopback closed-loop blast,".to_string(),
        "# 4000 queries, concurrency 8, 2 shards (values are machine-dependent)".to_string(),
    ];
    let mut run = |r: &mut Runner, label: String, io: IoBackend, batch: usize| {
        let handle = serve(
            ServeConfig::new("127.0.0.1:0", "FRA", Arc::clone(&zones))
                .threads(2)
                .io(io)
                .batch(batch),
        )
        .expect("bind loopback");
        let report =
            blast(LoadConfig::new(handle.local_addr(), origin()).concurrency(8).queries(4_000))
                .expect("blast");
        assert!(report.all_answered(), "{label}: loopback run lost queries: {report:?}");
        handle.shutdown();
        let pct = |q: f64| report.latency_percentile(q).unwrap_or(0) as f64 / 1e3;
        lines.push(format!(
            "{label} qps={:.0} p50_us={:.1} p99_us={:.1}",
            report.qps(),
            pct(0.50),
            pct(0.99)
        ));
        r.record(Stats::from_ns_samples(
            &format!("netio_blast_4k_{label}"),
            report.latencies_ns().iter().map(|&ns| ns as u128).collect(),
        ));
    };
    run(r, "io=std".to_string(), IoBackend::Std, 32);
    if batch_io_available() {
        for batch in [1usize, 8, 32] {
            run(r, format!("io=mmsg,batch={batch}"), IoBackend::Mmsg, batch);
        }
    } else {
        lines.push("io=mmsg unavailable on this host (std fallback only)".to_string());
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/netio_batch.txt");
    std::fs::write(path, lines.join("\n") + "\n").expect("write results/netio_batch.txt");
    eprintln!("netio/batch sweep written to results/netio_batch.txt");
}

/// What the truncation detour costs: the same padded (~1 kB) wildcard
/// TXT answer served whole over UDP under the default 1232-byte limit,
/// vs truncated at a forced 512-byte ceiling and completed over the
/// RFC 7766 TCP plane. The raw roundtrips isolate the transport cost
/// (reused vs fresh connection); the resolver runs price the full
/// TC=1 → TCP-retry detour, which also waits out the attempt window
/// before falling back. Medians land in `results/netio_tcp.txt`.
fn bench_tcp_fallback(r: &mut Runner) {
    let zones = Arc::new(vec![padded_test_domain_zone(&origin(), 2, 900)]);

    // Control: the default 1232-byte policy carries the padded answer
    // whole over UDP.
    let udp_srv = serve(ServeConfig::new("127.0.0.1:0", "FRA", Arc::clone(&zones)).threads(2))
        .expect("bind udp control");
    // Treatment: a 512-byte ceiling truncates every padded answer; the
    // TCP listener on the same port is what completes them.
    let tcp_srv = serve(
        ServeConfig::new("127.0.0.1:0", "FRA", zones)
            .threads(2)
            .tcp(TcpOptions::default())
            .truncation(TruncationPolicy::symmetric(512)),
    )
    .expect("bind truncating server");
    let tcp_addr = tcp_srv.tcp_addr().expect("tcp listener is on");

    let query = Message::iterative_query(7, origin().prepend("p1-r1").unwrap(), RType::Txt);
    let payload = query.encode().unwrap();

    r.set_samples(200);
    let sock = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind client socket");
    sock.connect(udp_srv.local_addr()).expect("connect client socket");
    let mut buf = [0u8; 2048];
    let udp_rt = r
        .bench("tcp_plane_udp_roundtrip", || {
            sock.send(&payload).expect("udp send");
            black_box(sock.recv(&mut buf).expect("udp recv"))
        })
        .map(|s| s.median_ns);

    let read_one = |conn: &mut std::net::TcpStream, reader: &mut FrameReader| loop {
        match reader.read_frame(conn) {
            Ok(Some(p)) => break p.len(),
            Ok(None) => panic!("server closed the connection mid-bench"),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("tcp frame read failed: {e}"),
        }
    };
    let mut conn = std::net::TcpStream::connect(tcp_addr).expect("tcp connect");
    conn.set_nodelay(true).expect("set nodelay");
    let mut reader = FrameReader::new();
    let mut scratch = Vec::with_capacity(payload.len() + 2);
    let tcp_reused = r
        .bench("tcp_plane_tcp_roundtrip_reused_conn", || {
            write_frame(&mut conn, &payload, &mut scratch).expect("frame write");
            black_box(read_one(&mut conn, &mut reader))
        })
        .map(|s| s.median_ns);
    let tcp_fresh = r
        .bench("tcp_plane_tcp_roundtrip_fresh_conn", || {
            let mut c = std::net::TcpStream::connect(tcp_addr).expect("tcp connect");
            c.set_nodelay(true).expect("set nodelay");
            let mut rd = FrameReader::new();
            let mut sc = Vec::with_capacity(payload.len() + 2);
            write_frame(&mut c, &payload, &mut sc).expect("frame write");
            black_box(read_one(&mut c, &mut rd))
        })
        .map(|s| s.median_ns);
    drop(conn);

    // End-to-end resolver transactions, concurrency 1 so elapsed/txns
    // is a true per-transaction mean. The fallback only fires once the
    // attempt window closes on a TC=1 answer, so its latency is
    // ~window + TCP roundtrip; a 15 ms window keeps the bench quick
    // (the client default is 250 ms — scale accordingly).
    let mut per_txn = |name: &str, addr: std::net::SocketAddr, edns: Option<u16>| {
        let samples: Vec<u128> = (0..10)
            .map(|i| {
                let mut cfg =
                    ResolveConfig::new(vec![addr], origin()).transactions(32).concurrency(1);
                cfg.seed = 2017 + i as u64;
                cfg.timeout = std::time::Duration::from_millis(15);
                if let Some(size) = edns {
                    cfg = cfg.edns_size(size);
                }
                let report = resolve(cfg).expect("resolve");
                report.stats.check().expect("client books balance");
                assert_eq!(report.stats.servfails, 0, "{name}: lost transactions");
                if edns.is_some() {
                    assert_eq!(
                        report.stats.tcp_answered, 32,
                        "{name}: every padded answer must complete over TCP"
                    );
                } else {
                    assert_eq!(report.stats.tc_seen, 0, "{name}: control must fit under UDP");
                }
                report.elapsed.as_nanos() / 32
            })
            .collect();
        let stats = Stats::from_ns_samples(name, samples);
        let median = stats.median_ns;
        r.record(stats);
        median
    };
    let udp_txn = per_txn("netio_txn_udp_padded_answer", udp_srv.local_addr(), None);
    let tcp_txn = per_txn("netio_txn_tcp_fallback_512", tcp_srv.local_addr(), Some(512));

    let fmt = |label: &str, ns: Option<u128>| match ns {
        Some(n) => format!("{label} p50_us={:.1}", n as f64 / 1e3),
        None => format!("{label} skipped (bench filter)"),
    };
    let lines = [
        "# udp vs tcp-fallback latency — loopback, padded ~1 kB wildcard TXT answer,".to_string(),
        "# 512-byte EDNS ceiling on the tcp side; resolver txns use a 15 ms attempt".to_string(),
        "# window (client default 250 ms) at concurrency 1 (machine-dependent);".to_string(),
        "# txn_* rows share the client's poll-tick floor — the delta between them".to_string(),
        "# is the truncation detour's cost, the roundtrip rows are the raw floors".to_string(),
        fmt("udp_roundtrip", udp_rt),
        fmt("tcp_roundtrip_reused_conn", tcp_reused),
        fmt("tcp_roundtrip_fresh_conn", tcp_fresh),
        fmt("txn_udp_limit_1232", Some(udp_txn)),
        fmt("txn_tcp_fallback_limit_512", Some(tcp_txn)),
    ];
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/netio_tcp.txt");
    std::fs::write(path, lines.join("\n") + "\n").expect("write results/netio_tcp.txt");
    eprintln!("netio/tcp fallback comparison written to results/netio_tcp.txt");

    udp_srv.shutdown();
    tcp_srv.shutdown();
}

/// What a warm record cache buys: the same 64-transaction resolver run
/// against a long-TTL zone, once into a fresh cache per sample (every
/// answer over the wire) and once against a primed shared cache (every
/// answer a hit, zero socket I/O). The raw store probes bound the
/// per-lookup cost the hit path pays. Medians and derived qps land in
/// `results/cache_hit.txt` — the paper's §4.4 cache-decay contrast at
/// its two endpoints.
fn bench_cache_lookup(r: &mut Runner) {
    use dnswild_cache::{CacheTime, RecordCache};

    // The store in isolation: one resident entry probed live, and one
    // key that was never inserted.
    let mut store = RecordCache::new();
    let hot = origin().prepend("hot").unwrap();
    let rec = Record::new(hot.clone(), 3_600, RData::Txt(Txt::from_string("x").unwrap()));
    store.insert(hot.clone(), RType::Txt, vec![rec], Rcode::NoError, 300, CacheTime::ZERO);
    let cold_key = origin().prepend("cold").unwrap();
    r.set_samples(200);
    let store_hit = r
        .bench("cache_store_hit_per_op", || {
            black_box(store.get(&hot, RType::Txt, CacheTime::ZERO).is_some())
        })
        .map(|s| s.median_ns);
    let store_miss = r
        .bench("cache_store_miss_per_op", || {
            black_box(store.get(&cold_key, RType::Txt, CacheTime::ZERO).is_none())
        })
        .map(|s| s.median_ns);

    // End to end: a 3600 s TTL keeps the warm runs warm for the whole
    // bench; concurrency 1 makes elapsed/txns a true per-transaction
    // mean once the client's fixed drain tail is subtracted. The qname
    // schedule is config-determined, so every warm run re-asks exactly
    // what the priming run cached.
    const TXNS: u64 = 512;
    let zones = Arc::new(vec![probe_ttl_test_domain_zone(&origin(), 2, 3_600)]);
    let handle =
        serve(ServeConfig::new("127.0.0.1:0", "FRA", zones).threads(2)).expect("bind loopback");
    let addr = handle.local_addr();
    let run = |cache: Arc<dnswild_netio::SharedCache>| {
        let mut cfg =
            ResolveConfig::new(vec![addr], origin()).transactions(TXNS).concurrency(1).cache(cache);
        cfg.seed = 2017;
        let report = resolve(cfg).expect("resolve");
        report.stats.check().expect("client books balance");
        assert_eq!(report.stats.servfails, 0, "cache bench lost transactions");
        report
    };
    let per_txn = |report: &dnswild_netio::ResolveReport| {
        report.elapsed.saturating_sub(dnswild_netio::DRAIN_WINDOW).as_nanos() / u128::from(TXNS)
    };
    let cold: Vec<u128> = (0..10)
        .map(|_| {
            let report = run(dnswild_netio::SharedCache::new(CacheConfig::default()));
            assert_eq!(report.stats.cache_hits, 0, "a fresh cache cannot hit");
            per_txn(&report)
        })
        .collect();
    let primed = dnswild_netio::SharedCache::new(CacheConfig::default());
    run(Arc::clone(&primed));
    let warm: Vec<u128> = (0..10)
        .map(|_| {
            let report = run(Arc::clone(&primed));
            assert_eq!(report.stats.cache_hits, TXNS, "warm runs must answer from cache");
            assert_eq!(report.stats.attempts, 0, "cache hits must not touch the socket");
            per_txn(&report)
        })
        .collect();
    handle.shutdown();
    let cold_stats = Stats::from_ns_samples("netio_txn_cache_cold", cold);
    let warm_stats = Stats::from_ns_samples("netio_txn_cache_warm", warm);
    let (cold_ns, warm_ns) = (cold_stats.median_ns, warm_stats.median_ns);
    r.record(cold_stats);
    r.record(warm_stats);

    let fmt_op = |label: &str, ns: Option<u128>| match ns {
        Some(n) => format!("{label} p50_ns={n}"),
        None => format!("{label} skipped (bench filter)"),
    };
    let fmt_txn = |label: &str, ns: u128| {
        format!("{label} p50_us={:.1} qps={:.0}", ns as f64 / 1e3, 1e9 / ns as f64)
    };
    let lines = [
        "# record-cache warm vs cold — loopback, 512-txn resolver runs at".to_string(),
        "# concurrency 1 against a 3600 s TTL preset zone, the client's fixed".to_string(),
        "# 200 ms drain tail subtracted (machine-dependent); cold resolves every".to_string(),
        "# qname over UDP into a fresh cache, warm answers entirely from a primed".to_string(),
        "# shared cache with zero socket I/O; store_* rows are raw probe costs".to_string(),
        fmt_op("store_hit", store_hit),
        fmt_op("store_miss", store_miss),
        fmt_txn("txn_cold", cold_ns),
        fmt_txn("txn_warm", warm_ns),
    ];
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/cache_hit.txt");
    std::fs::write(path, lines.join("\n") + "\n").expect("write results/cache_hit.txt");
    eprintln!("netio/cache warm-vs-cold written to results/cache_hit.txt");
}

/// The defense-matrix sweep: every attack mode against the padded
/// referral zone, undefended and behind the default rate-limit policy.
/// The attacker's own books give the bandwidth amplification factor
/// (response bytes per query byte); the sweep lands in
/// `results/attack_amp.txt` so the defended-vs-undefended contrast
/// survives next to the other serving-plane numbers. Counters are
/// seed-deterministic; only wall-clock varies between hosts.
fn bench_attack_sweep() {
    let zones = Arc::new(vec![attack_test_domain_zone(&origin(), 2, 20)]);
    let mut lines = vec![
        "# adversarial sweep — loopback, 400 queries per cell, seed 2017,".to_string(),
        "# 20-NS padded referral zone; amp is attacker bytes_received/bytes_sent".to_string(),
        "# (drops count zero out), rrl=on is the default policy (burst 50,".to_string(),
        "# refill 1/8, slip 1-in-2, NXDOMAIN budget 0, scope abusive)".to_string(),
    ];
    for defended in [false, true] {
        for mode in [AttackMode::NxdomainFlood, AttackMode::NxnsReferral, AttackMode::SpoofedBurst]
        {
            let mut config = ServeConfig::new("127.0.0.1:0", "FRA", Arc::clone(&zones))
                .threads(2)
                // Honor the generator's EDNS 4096 advertisement so the
                // fat NXNS referral rides back whole.
                .truncation(TruncationPolicy::symmetric(4096));
            if defended {
                config = config.rate_limit(RateLimitPolicy::default());
            }
            let handle = serve(config).expect("bind attack target");
            let report = assault(
                AttackConfig::new(handle.local_addr(), origin(), mode)
                    .concurrency(2)
                    .queries(400)
                    .seed(2017)
                    .timeout(std::time::Duration::from_millis(40)),
            )
            .expect("assault");
            let stats = handle.shutdown();
            let name = mode.name();
            assert!(report.all_accounted(), "mode={name}: unaccounted datagrams: {report:?}");
            assert_eq!(stats.rrl_dropped, report.timeouts, "mode={name}: RRL books");
            let amp = report
                .amplification()
                .map_or_else(|| "n/a".to_string(), |f| format!("{f:.2}"));
            lines.push(format!(
                "mode={name} rrl={} sent={} answered={} tc_slips={} dropped={} amp={amp}",
                if defended { "on" } else { "off" },
                report.sent,
                report.received,
                report.tc_slips,
                report.timeouts,
            ));
        }
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/attack_amp.txt");
    std::fs::write(path, lines.join("\n") + "\n").expect("write results/attack_amp.txt");
    eprintln!("netio/attack sweep written to results/attack_amp.txt");
}

fn main() {
    let mut r = Runner::from_env("netio");
    bench_encode_paths(&mut r);
    bench_chaos_decide(&mut r);
    bench_telemetry_record(&mut r);
    bench_metrics_record(&mut r);
    let bare_median = bench_loopback_round_trips(&mut r);
    bench_traced_blast(&mut r, bare_median);
    bench_batch_sweep(&mut r);
    bench_tcp_fallback(&mut r);
    bench_cache_lookup(&mut r);
    bench_attack_sweep();
    r.finish();
}
