//! Substrate benchmarks: simulator event throughput, anycast catchment
//! computation, and the resolver-side caches and selection policies.

use detrand::DetRng;
use dnswild_bench::{black_box, Runner};
use std::any::Any;

use dnswild_netsim::geo::datacenters;
use dnswild_netsim::{
    Actor, Context, Datagram, HostConfig, LatencyConfig, SimAddr, SimDuration, Simulator,
};
use dnswild_resolver::{InfraCache, PolicyKind, RecordCache, Smoothing};

struct Echo;
impl Actor for Echo {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, d: Datagram) {
        ctx.send(d.dst, d.src, d.payload);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Fires `n` ping-pong rounds through the event loop.
struct Chatter {
    peer: SimAddr,
    remaining: u32,
}
impl Actor for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let own = ctx.own_addr();
        ctx.send(own, self.peer, vec![0u8; 64]);
    }
    fn on_datagram(&mut self, ctx: &mut Context<'_>, d: Datagram) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(d.dst, d.src, d.payload);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn bench_event_loop(r: &mut Runner) {
    r.bench("netsim_ping_pong_1000_rounds", || {
        let mut sim = Simulator::with_latency(
            1,
            LatencyConfig { loss_rate: 0.0, ..LatencyConfig::default() },
        );
        let e = sim.add_host(
            HostConfig::at_place(&datacenters::FRA, SimDuration::from_millis(1), 1),
            Box::new(Echo),
        );
        let ea = sim.bind_unicast(e);
        let ch = sim.add_host(
            HostConfig::at_place(&datacenters::DUB, SimDuration::from_millis(1), 2),
            Box::new(Chatter { peer: ea, remaining: 1_000 }),
        );
        sim.bind_unicast(ch);
        sim.run_until_idle();
        black_box(sim.stats().delivered)
    });
}

fn bench_anycast_catchment(r: &mut Runner) {
    // Setup cost (building the simulator) is inside the timed closure
    // here; it is small relative to the 100 catchment computations.
    r.bench("netsim_anycast_catchment_100_senders", || {
        let mut sim = Simulator::new(2);
        let sites: Vec<_> = datacenters::ALL
            .iter()
            .map(|p| {
                sim.add_host(
                    HostConfig::at_place(p, SimDuration::from_millis(1), 1),
                    Box::new(Echo),
                )
            })
            .collect();
        let svc = sim.bind_anycast(&sites);
        let senders: Vec<_> = (0..100)
            .map(|i| {
                let p = datacenters::ALL[i % 7];
                let h = sim.add_host(
                    HostConfig::at_place(p, SimDuration::from_millis(2), 2),
                    Box::new(Echo),
                );
                sim.bind_unicast(h);
                h
            })
            .collect();
        for h in senders {
            black_box(sim.catchment(h, svc));
        }
    });
}

fn bench_caches(r: &mut Runner) {
    // Mint some addresses.
    let mut sim = Simulator::new(3);
    let addrs: Vec<SimAddr> = (0..4)
        .map(|_| {
            let h = sim.add_host(
                HostConfig::at_place(&datacenters::FRA, SimDuration::from_millis(1), 1),
                Box::new(Echo),
            );
            sim.bind_unicast(h)
        })
        .collect();

    {
        let mut cache = InfraCache::new(Some(SimDuration::from_mins(10)), Smoothing::BIND);
        let mut i = 0u64;
        r.bench("resolver_infra_observe_and_peek", || {
            let now = dnswild_netsim::SimTime::from_micros(i * 1_000);
            let addr = addrs[(i % 4) as usize];
            cache.observe_rtt(addr, SimDuration::from_millis(40 + (i % 50)), now);
            i += 1;
            black_box(cache.peek(addr, now))
        });
    }

    {
        use dnswild_proto::rdata::Txt;
        use dnswild_proto::{Name, RData, RType, Rcode, Record};
        let mut cache = RecordCache::new();
        let names: Vec<Name> = (0..64)
            .map(|i| Name::parse(&format!("q{i}.ourtestdomain.nl")).unwrap())
            .collect();
        let rec = Record::new(names[0].clone(), 5, RData::Txt(Txt::from_string("x").unwrap()));
        let mut i = 0usize;
        r.bench("resolver_record_cache_roundtrip", || {
            let now = dnswild_cache::CacheTime::from_micros(i as u64);
            let name = &names[i % 64];
            cache.insert(name.clone(), RType::Txt, vec![rec.clone()], Rcode::NoError, 300, now);
            i += 1;
            black_box(cache.get(name, RType::Txt, now))
        });
    }

    for kind in [PolicyKind::BindSrtt, PolicyKind::UnboundBand, PolicyKind::PowerDnsSpeed] {
        let mut policy = kind.build();
        let mut infra = InfraCache::new(kind.default_infra_expiry(), kind.smoothing());
        let mut rng = DetRng::seed_from_u64(4);
        let mut i = 0u64;
        r.bench(&format!("resolver_select_{}", kind.label()), || {
            let now = dnswild_netsim::SimTime::from_micros(i * 2_000_000);
            let chosen = policy.select(&addrs, &[], &mut infra, now, &mut rng);
            infra.observe_rtt(chosen, SimDuration::from_millis(30), now);
            i += 1;
            black_box(chosen)
        });
    }
}

fn main() {
    let mut r = Runner::from_env("substrate");
    bench_event_loop(&mut r);
    bench_anycast_catchment(&mut r);
    bench_caches(&mut r);
    r.finish();
}
