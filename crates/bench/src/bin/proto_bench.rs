//! Microbenchmarks of the DNS wire format: the per-packet cost every
//! simulated query pays four times (stub→resolver→auth and back).

use dnswild_bench::{black_box, Runner};

use dnswild_proto::rdata::{Ns, Txt};
use dnswild_proto::{Message, Name, RData, RType, Rcode, Record};

fn typical_query() -> Message {
    Message::stub_query(
        0x2a2a,
        Name::parse("v1234-r17.ourtestdomain.nl").unwrap(),
        RType::Txt,
    )
}

fn typical_response() -> Message {
    let q = typical_query();
    let mut resp = Message::response_to(&q, Rcode::NoError);
    resp.header.authoritative = true;
    resp.answers.push(Record::new(
        q.questions[0].qname.clone(),
        5,
        RData::Txt(Txt::from_string("site=FRA@FRA").unwrap()),
    ));
    for i in 1..=4 {
        resp.authorities.push(Record::new(
            Name::parse("ourtestdomain.nl").unwrap(),
            3600,
            RData::Ns(Ns::new(Name::parse(&format!("ns{i}.ourtestdomain.nl")).unwrap())),
        ));
    }
    resp
}

fn main() {
    let mut r = Runner::from_env("proto");

    let query = typical_query();
    let response = typical_response();
    r.bench("encode_query", || black_box(&query).encode().unwrap());
    r.bench("encode_response_compressed", || black_box(&response).encode().unwrap());

    let query_wire = typical_query().encode().unwrap();
    let response_wire = typical_response().encode().unwrap();
    r.bench("decode_query", || Message::decode(black_box(&query_wire)).unwrap());
    r.bench("decode_response_compressed", || {
        Message::decode(black_box(&response_wire)).unwrap()
    });

    r.bench("name_parse", || Name::parse(black_box("v1234-r17.probe.ourtestdomain.nl")).unwrap());
    let name = Name::parse("v1234-r17.probe.ourtestdomain.nl").unwrap();
    r.bench("name_canonical_wire", || black_box(&name).canonical_wire());

    r.finish();
}
