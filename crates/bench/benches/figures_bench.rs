//! One benchmark per paper artifact: each regenerates a scaled-down
//! version of the table/figure pipeline end to end (deployment →
//! measurement → analysis), so `cargo bench` exercises every
//! reproduction path and tracks its cost.
//!
//! Scale note: populations here are tiny (tens of VPs) to keep Criterion
//! iterations fast; the `exp_*` binaries run the full-scale versions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dnswild::analysis::{
    coverage, interval_sweep, preference, query_share, rank_profile, rtt_sensitivity,
};
use dnswild::guidance::{compare, demo_pair};
use dnswild::production::{run_production, ProductionConfig};
use dnswild::{Experiment, PolicyMix, SimDuration, StandardConfig};

fn small(config: StandardConfig, seed: u64) -> dnswild::Report {
    Experiment::standard(config, seed).vantage_points(30).rounds(8).run()
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("figures/table1_deployments", |b| {
        b.iter(|| {
            for config in StandardConfig::ALL {
                black_box(config.deployment());
            }
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("figures/fig2_coverage_pipeline", |b| {
        b.iter(|| {
            let report = small(StandardConfig::C2A, 1);
            black_box(coverage(&report.result))
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("figures/fig3_share_pipeline", |b| {
        b.iter(|| {
            let report = small(StandardConfig::C2C, 2);
            black_box(query_share(&report.result))
        })
    });
}

fn bench_fig4_table2(c: &mut Criterion) {
    c.bench_function("figures/fig4_table2_preference_pipeline", |b| {
        b.iter(|| {
            let report = small(StandardConfig::C2B, 3);
            black_box(preference(&report.result))
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("figures/fig5_sensitivity_pipeline", |b| {
        b.iter(|| {
            let report = small(StandardConfig::C2B, 4);
            black_box(rtt_sensitivity(&report.result))
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("figures/fig6_interval_pipeline", |b| {
        b.iter(|| {
            let fast = Experiment::standard(StandardConfig::C2C, 5)
                .vantage_points(20)
                .rounds(6)
                .interval(SimDuration::from_mins(2))
                .run();
            let slow = Experiment::standard(StandardConfig::C2C, 5)
                .vantage_points(20)
                .rounds(6)
                .interval(SimDuration::from_mins(30))
                .run();
            let results = vec![(2u64, &fast.result), (30u64, &slow.result)];
            black_box(interval_sweep(&results, "FRA"))
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig7_production_pipeline", |b| {
        b.iter(|| {
            let mut cfg = ProductionConfig::root(25, 6);
            cfg.queries_per_client = 300;
            let result = run_production(&cfg);
            black_box(rank_profile(&result.per_client_counts, 10, 250))
        })
    });
    group.finish();
}

fn bench_guidance(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("guidance_compare_pipeline", |b| {
        b.iter(|| {
            let (mixed, all) = demo_pair();
            black_box(compare(vec![mixed, all], 25, 6, 7, &PolicyMix::default()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig2,
    bench_fig3,
    bench_fig4_table2,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_guidance
);
criterion_main!(benches);
