//! Microbenchmarks of the DNS wire format: the per-packet cost every
//! simulated query pays four times (stub→resolver→auth and back).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dnswild_proto::rdata::{Ns, Txt};
use dnswild_proto::{Message, Name, RData, RType, Rcode, Record};

fn typical_query() -> Message {
    Message::stub_query(
        0x2a2a,
        Name::parse("v1234-r17.ourtestdomain.nl").unwrap(),
        RType::Txt,
    )
}

fn typical_response() -> Message {
    let q = typical_query();
    let mut resp = Message::response_to(&q, Rcode::NoError);
    resp.header.authoritative = true;
    resp.answers.push(Record::new(
        q.questions[0].qname.clone(),
        5,
        RData::Txt(Txt::from_string("site=FRA@FRA").unwrap()),
    ));
    for i in 1..=4 {
        resp.authorities.push(Record::new(
            Name::parse("ourtestdomain.nl").unwrap(),
            3600,
            RData::Ns(Ns::new(Name::parse(&format!("ns{i}.ourtestdomain.nl")).unwrap())),
        ));
    }
    resp
}

fn bench_encode(c: &mut Criterion) {
    let query = typical_query();
    let response = typical_response();
    c.bench_function("proto/encode_query", |b| {
        b.iter(|| black_box(&query).encode().unwrap())
    });
    c.bench_function("proto/encode_response_compressed", |b| {
        b.iter(|| black_box(&response).encode().unwrap())
    });
}

fn bench_decode(c: &mut Criterion) {
    let query = typical_query().encode().unwrap();
    let response = typical_response().encode().unwrap();
    c.bench_function("proto/decode_query", |b| {
        b.iter(|| Message::decode(black_box(&query)).unwrap())
    });
    c.bench_function("proto/decode_response_compressed", |b| {
        b.iter(|| Message::decode(black_box(&response)).unwrap())
    });
}

fn bench_name(c: &mut Criterion) {
    c.bench_function("proto/name_parse", |b| {
        b.iter(|| Name::parse(black_box("v1234-r17.probe.ourtestdomain.nl")).unwrap())
    });
    let name = Name::parse("v1234-r17.probe.ourtestdomain.nl").unwrap();
    c.bench_function("proto/name_canonical_wire", |b| {
        b.iter(|| black_box(&name).canonical_wire())
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_name);
criterion_main!(benches);
