//! # recursives-in-the-wild
//!
//! Root crate of the workspace reproducing *"Recursives in the Wild:
//! Engineering Authoritative DNS Servers"* (IMC 2017). It re-exports the
//! [`dnswild`] umbrella crate and hosts the repository-level integration
//! tests (`tests/`) and runnable examples (`examples/`).
//!
//! Start with [`dnswild::Experiment`] for the high-level API, or see the
//! `exp_*` binaries in the `dnswild` crate for the per-figure
//! reproduction harnesses. `README.md`, `DESIGN.md` and `EXPERIMENTS.md`
//! at the repository root document the architecture, the substitutions
//! made for the paper's Internet-scale hardware, and the paper-vs-
//! measured numbers.

pub use dnswild::*;
