#!/usr/bin/env bash
# Tier-1 verification, run fully offline: the workspace must build and
# test with no registry access (see "hermetic build policy" in README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline

# Loopback smoke test of the real-socket serving plane: a netio server
# on an ephemeral UDP port must answer 100% of a 1k-query closed-loop
# blast with internally consistent counters (exits non-zero otherwise).
cargo run --release --offline -q -p dnswild --bin dnswild -- smoke --queries 1000

# Raised-qps smoke floor: both I/O loops of the sharded hot path — the
# portable std loop and the Linux recvmmsg/sendmmsg loop — must sustain
# the floor on a 6k-query closed-loop blast (median of three runs each;
# one run is hostage to scheduler noise). The floor is deliberately far
# under the measured loopback throughput (see results/netio_batch.txt)
# so only a real regression trips it, not a busy CI host.
QPS_FLOOR=40000
floor_qps() {
    local io="$1" qps
    qps=$(for _ in 1 2 3; do
        cargo run --release --offline -q -p dnswild --bin dnswild -- \
            smoke --queries 6000 --json --io "$io" | sed -n 's/.*"qps":\([0-9.]*\).*/\1/p'
    done | sort -g | sed -n '2p')
    if ! awk -v q="$qps" -v f="$QPS_FLOOR" 'BEGIN { exit !(q >= f) }'; then
        echo "qps floor gate: io=$io sustained only $qps qps (floor $QPS_FLOOR)" >&2
        exit 1
    fi
    echo "qps floor: io=$io sustained $qps qps (floor $QPS_FLOOR)"
}
floor_qps std
# The mmsg loop only exists where the kernel cooperates; probe first so
# the gate skips (loudly) rather than fails on non-Linux hosts.
if mmsg_probe=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
        smoke --queries 100 --json --io mmsg 2>&1); then
    floor_qps mmsg
elif grep -q "unavailable" <<<"$mmsg_probe"; then
    echo "qps floor: io=mmsg skipped (batched I/O unavailable on this host)"
else
    echo "qps floor gate: io=mmsg probe failed unexpectedly:" >&2
    printf '%s\n' "$mmsg_probe" >&2
    exit 1
fi

# Chaos smoke gate: 2k transactions through two seeded fault proxies at
# 10% loss + 1% corruption. The smoke command itself enforces the hard
# criteria (100% answered-or-SERVFAIL, zero unaccounted datagrams, no
# stuck transactions, wall-clock budget); on top of that, the fault
# schedule and final counters must be byte-identical across two runs
# with the same seed.
chaos_a=$(mktemp)
chaos_b=$(mktemp)
trace_chaos=$(mktemp)
trace_a=$(mktemp)
trace_b=$(mktemp)
trap 'rm -f "$chaos_a" "$chaos_b" "$trace_chaos" "$trace_a" "$trace_b"' EXIT
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --queries 2000 --seed 2017 --budget-secs 120 | tee "$chaos_a"
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --queries 2000 --seed 2017 --budget-secs 120 > "$chaos_b"
if ! diff <(grep '^chaos' "$chaos_a") <(grep '^chaos' "$chaos_b"); then
    echo "chaos smoke not reproducible: fault schedule or counters differ between runs" >&2
    exit 1
fi
echo "chaos smoke reproducible: seed 2017 produced identical schedules and counters twice"

# Truncation gate: with the wildcard answer padded past a forced
# 512-byte EDNS limit, every UDP answer comes back TC=1 and must
# complete over the TCP transport plane — through TCP connection faults
# (refused, reset, stalled, corrupted length prefixes). The smoke
# command enforces the hard criteria internally (every truncated
# transaction answered over TCP or SERVFAIL, zero unaccounted datagrams
# *and* frames); on top, the CI configuration requires actual TCP
# completions, zero SERVFAILs, and a schedule that is byte-identical
# across two same-seed runs.
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --tcp --edns-size 512 --queries 48 --seed 2017 --budget-secs 120 | tee "$chaos_a"
if ! grep -q '^chaos-client: .* servfail=0 .* tcp_ok=[1-9]' "$chaos_a"; then
    echo "truncation gate: expected zero SERVFAILs and >0 TCP completions" >&2
    exit 1
fi
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --tcp --edns-size 512 --queries 48 --seed 2017 --budget-secs 120 > "$chaos_b"
if ! diff <(grep '^chaos' "$chaos_a") <(grep '^chaos' "$chaos_b"); then
    echo "truncation gate not reproducible: TCP fault schedule or counters differ between runs" >&2
    exit 1
fi
echo "truncation gate: every truncated transaction completed over TCP, reproducibly"

# Telemetry closure gate: a traced chaos smoke must account for every
# decoded query. The per-auth counts `report --from-trace` recovers
# from the binary trace have to equal the server's own atomic counters
# exactly, and the capture must not have dropped a single event to
# ring overflow.
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --queries 2000 --seed 2017 --budget-secs 120 --trace "$trace_chaos" | tee "$chaos_a"
server_queries=$(sed -n 's/^chaos-server: queries=\([0-9]*\) .*/\1/p' "$chaos_a")
overflow=$(sed -n 's/^trace-summary: events=[0-9]* overflow=\([0-9]*\)$/\1/p' "$chaos_a")
if [ -z "$server_queries" ] || [ "$overflow" != "0" ]; then
    echo "telemetry gate: missing counters or ring overflow (queries='$server_queries' overflow='$overflow')" >&2
    exit 1
fi
# Capture the report before grepping: grep -q would close the pipe on
# the first match and kill the writer mid-print under pipefail.
report_out=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    report --from-trace "$trace_chaos")
if ! grep -qx "trace-auth-queries: FRA=$server_queries" <<<"$report_out"; then
    echo "telemetry gate: trace-derived per-auth counts do not match the server's counters (expected FRA=$server_queries)" >&2
    exit 1
fi
echo "telemetry closure: trace reproduces chaos-server queries=$server_queries with zero overflow drops"

# Telemetry determinism gate: the trace digest keys on event content
# (not timestamps or ports), so two same-seed loss-free smokes must
# produce the same digest.
dig_a=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --queries 1000 --trace "$trace_a" | grep '^trace-digest')
dig_b=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --queries 1000 --trace "$trace_b" | grep '^trace-digest')
if [ -z "$dig_a" ] || [ "$dig_a" != "$dig_b" ]; then
    echo "telemetry gate: same-seed trace digests differ ('$dig_a' vs '$dig_b')" >&2
    exit 1
fi
echo "telemetry determinism: same-seed traces share ${dig_a}"

# Telemetry overhead gate: capture must stay off the hot path — the
# traced smoke keeps at least 90% of the untraced throughput. Short
# runs are dominated by scheduler noise on small hosts, so measure
# 6k-query runs and compare the median of five on each side (a max
# would amplify one lucky run; the median rides out the tails).
median_qps() {
    local i
    for i in 1 2 3 4 5; do
        cargo run --release --offline -q -p dnswild --bin dnswild -- \
            smoke --queries 6000 --json "$@" | sed -n 's/.*"qps":\([0-9.]*\).*/\1/p'
    done | sort -g | sed -n '3p'
}
plain_qps=$(median_qps)
traced_qps=$(median_qps --trace "$trace_a")
if ! awk -v t="$traced_qps" -v p="$plain_qps" 'BEGIN { exit !(t >= 0.90 * p) }'; then
    echo "telemetry overhead gate: traced smoke $traced_qps qps < 90% of untraced $plain_qps qps" >&2
    exit 1
fi
echo "telemetry overhead: traced $traced_qps qps vs untraced $plain_qps qps (within 10%)"

# Metrics gate: a metered chaos smoke must pass the scrape-equality
# check the smoke command enforces internally — a live Prometheus
# endpoint scraped *during* the blast, and a final scrape whose per-auth
# counters equal the server's own atomic stats exactly, with all five
# hot-path stage histograms populated.
metrics_out=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --queries 2000 --seed 2017 --budget-secs 120 --metrics-addr 127.0.0.1:0)
if ! grep -q '^metrics-gate: PASS' <<<"$metrics_out"; then
    echo "metrics gate: scrape did not match the server's counters" >&2
    printf '%s\n' "$metrics_out" >&2
    exit 1
fi
grep '^metrics-gate' <<<"$metrics_out"

# Watchdog gate: with faults off, the live SLO watchdog must see every
# paper law hold — share-vs-1/SRTT within tolerance, full coverage,
# zero SERVFAILs, zero ring overflow. The smoke command fails the run
# itself if a law breaches on a clean run.
clean_out=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --queries 2000 --seed 2017 --loss 0 --corrupt 0 \
    --budget-secs 120 --metrics-addr 127.0.0.1:0)
if ! grep -q '^watchdog-gate: PASS' <<<"$clean_out"; then
    echo "watchdog gate: a law breached on a clean run" >&2
    printf '%s\n' "$clean_out" >&2
    exit 1
fi
grep '^watchdog-gate' <<<"$clean_out"

# Attack gate: a seeded random-subdomain NXDOMAIN flood against a
# rate-limiting server, run concurrently with a legitimate blast. The
# smoke command enforces the hard criteria internally (legit goodput
# 100%, RRL books balanced against attacker-observed timeouts/TC slips,
# watchdog attack-pressure breach firing, trace-derived amplification
# below the legitimate baseline, scrape equality across all counters);
# on top, CI requires actual slips and drops and a byte-identical
# replay of every deterministic `attack` line across two same-seed runs.
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --attack nxdomain --rrl --queries 400 --seed 2017 \
    --trace "$trace_a" --metrics-addr 127.0.0.1:0 | tee "$chaos_a"
if ! grep -q '^attack-server: .* rrl_slipped=[1-9]' "$chaos_a"; then
    echo "attack gate: the limiter never slipped a TC=1 answer" >&2
    exit 1
fi
if ! grep -q '^attack-server: .* rrl_dropped=[1-9]' "$chaos_a"; then
    echo "attack gate: the limiter never dropped a response" >&2
    exit 1
fi
if ! grep -q '^attack-watchdog: .* breach=true' "$chaos_a"; then
    echo "attack gate: the watchdog attack-pressure law never breached" >&2
    exit 1
fi
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --attack nxdomain --rrl --queries 400 --seed 2017 \
    --trace "$trace_b" --metrics-addr 127.0.0.1:0 > "$chaos_b"
if ! diff <(grep '^attack' "$chaos_a") <(grep '^attack' "$chaos_b"); then
    echo "attack gate not reproducible: flood schedule or RRL verdicts differ between runs" >&2
    exit 1
fi
echo "attack gate: RRL shed the seeded flood reproducibly while legit goodput held"

# Cache gate: two back-to-back resolve passes over a low-TTL preset
# zone through one shared record cache. The smoke command enforces the
# hard criteria internally (warm hit-rate over 1/2, zero socket sends
# for hits on an unbounded cache, zero unaccounted datagrams, balanced
# books per pass); on top, CI requires a fully warm second pass and
# byte-identical `cache-` lines across two same-seed runs.
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --cache --queries 400 --seed 2017 | tee "$chaos_a"
if ! grep -q '^cache-warm: .* cache_hits=400 ' "$chaos_a"; then
    echo "cache gate: warm pass did not answer every repeat from cache" >&2
    exit 1
fi
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --cache --queries 400 --seed 2017 > "$chaos_b"
if ! diff <(grep '^cache-' "$chaos_a") <(grep '^cache-' "$chaos_b"); then
    echo "cache gate not reproducible: counters differ between same-seed runs" >&2
    exit 1
fi
# Full-feature pass: popularity prefetch refreshes every warm hit, then
# a chaos blackhole kills the authoritative and RFC 8767 serve-stale
# must complete every transaction from expired entries — with the
# scraped cache gauges equal to the cache's own books and the trace
# yielding per-lookup cache counts for `report --from-trace`.
cache_out=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --cache --prefetch --serve-stale --queries 400 --seed 2017 \
    --trace "$trace_a" --metrics-addr 127.0.0.1:0)
printf '%s\n' "$cache_out" | grep '^cache-\|^metrics-gate\|^smoke'
if ! grep -q '^cache-stale: .* stale_srv=400 ' <<<"$cache_out"; then
    echo "cache gate: serve-stale did not complete every transaction from expired entries" >&2
    exit 1
fi
if ! grep -q '^metrics-gate: PASS' <<<"$cache_out"; then
    echo "cache gate: scraped cache gauges did not match the cache books" >&2
    exit 1
fi
report_out=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    report --from-trace "$trace_a")
if ! grep -q '^trace-cache: hits=[1-9]' <<<"$report_out"; then
    echo "cache gate: trace did not yield cache-lookup counts" >&2
    printf '%s\n' "$report_out" >&2
    exit 1
fi
echo "cache gate: warm hits, prefetch, serve-stale and scrape equality all held, reproducibly"

# Explain gate, part 1 — cache-stale attribution: $trace_a still holds
# the cache gate's prefetch + serve-stale capture, where every
# transaction completed from an expired entry; the journey taxonomy
# must label those cache-stale.
tails_out=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    report --from-trace "$trace_a" --tails)
if ! grep -q '^tails-cache-stale: journeys=[1-9]' <<<"$tails_out"; then
    echo "explain gate: serve-stale trace yielded no cache-stale journeys" >&2
    printf '%s\n' "$tails_out" >&2
    exit 1
fi
echo "explain gate: serve-stale journeys attributed to cache-stale"

# Explain gate, part 2 — the full journey pipeline: a 2k-transaction
# chaos smoke through the truncation plane with a harness-tuned rate
# limiter (per-port buckets, charge everything), traced and run twice
# at seed 2017. Journey ids are pure functions of the seed, so the
# reconstructed `report --tails` attribution table and the canonical
# `explain` timelines must be byte-identical across runs; every
# non-clean tail cause the leg can produce must be touched; and
# `explain --failed` must exit clean with balanced hop books. The
# flight recorder's JSONL dump must retain journeys.
flight_a=$(mktemp)
trap 'rm -f "$chaos_a" "$chaos_b" "$trace_chaos" "$trace_a" "$trace_b" "$flight_a"' EXIT
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --tcp --edns-size 512 --rrl --queries 2000 --seed 2017 \
    --budget-secs 120 --trace "$trace_a" --flight-dump "$flight_a" | tee "$chaos_a"
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --tcp --edns-size 512 --rrl --queries 2000 --seed 2017 \
    --budget-secs 120 --trace "$trace_b" > "$chaos_b"
if ! diff <(grep '^chaos' "$chaos_a") <(grep '^chaos' "$chaos_b"); then
    echo "explain gate not reproducible: chaos+rrl schedule differs between runs" >&2
    exit 1
fi
tails_a=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    report --from-trace "$trace_a" --tails)
tails_b=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    report --from-trace "$trace_b" --tails)
if ! diff <(grep '^tails-' <<<"$tails_a") <(grep '^tails-' <<<"$tails_b"); then
    echo "explain gate not reproducible: tail attribution tables differ between runs" >&2
    exit 1
fi
grep '^tails-' <<<"$tails_a"
for cause in servfail rrl-slipped tc-tcp-detour chaos-faulted retried; do
    if ! grep -q "^tails-$cause: journeys=[0-9]* touched=[1-9]" <<<"$tails_a"; then
        echo "explain gate: tail cause $cause was never touched" >&2
        exit 1
    fi
done
exp_a=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    explain "$trace_a" --failed --canonical)
exp_b=$(cargo run --release --offline -q -p dnswild --bin dnswild -- \
    explain "$trace_b" --failed --canonical)
if ! grep -q '^explain-books: .* balanced=true' <<<"$exp_a"; then
    echo "explain gate: hop books did not balance" >&2
    printf '%s\n' "$exp_a" | head -3 >&2
    exit 1
fi
if ! diff <(printf '%s\n' "$exp_a") <(printf '%s\n' "$exp_b") > /dev/null; then
    echo "explain gate not reproducible: canonical failed-journey timelines differ" >&2
    exit 1
fi
grep '^explain-books' <<<"$exp_a"
if ! grep -q '"journey"' "$flight_a"; then
    echo "explain gate: flight-recorder dump is empty or malformed" >&2
    exit 1
fi
echo "explain gate: tails and timelines byte-identical across same-seed runs; flight recorder dumped $(wc -l < "$flight_a") journeys"

# Lint gate: the observability plane rides the hot path, so keep the
# whole workspace clippy-clean at -D warnings.
cargo clippy --workspace --offline -q -- -D warnings
echo "clippy: workspace clean at -D warnings"
