#!/usr/bin/env bash
# Tier-1 verification, run fully offline: the workspace must build and
# test with no registry access (see "hermetic build policy" in README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline

# Loopback smoke test of the real-socket serving plane: a netio server
# on an ephemeral UDP port must answer 100% of a 1k-query closed-loop
# blast with internally consistent counters (exits non-zero otherwise).
cargo run --release --offline -q -p dnswild --bin dnswild -- smoke --queries 1000
