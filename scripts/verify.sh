#!/usr/bin/env bash
# Tier-1 verification, run fully offline: the workspace must build and
# test with no registry access (see "hermetic build policy" in README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
