#!/usr/bin/env bash
# Tier-1 verification, run fully offline: the workspace must build and
# test with no registry access (see "hermetic build policy" in README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline

# Loopback smoke test of the real-socket serving plane: a netio server
# on an ephemeral UDP port must answer 100% of a 1k-query closed-loop
# blast with internally consistent counters (exits non-zero otherwise).
cargo run --release --offline -q -p dnswild --bin dnswild -- smoke --queries 1000

# Chaos smoke gate: 2k transactions through two seeded fault proxies at
# 10% loss + 1% corruption. The smoke command itself enforces the hard
# criteria (100% answered-or-SERVFAIL, zero unaccounted datagrams, no
# stuck transactions, wall-clock budget); on top of that, the fault
# schedule and final counters must be byte-identical across two runs
# with the same seed.
chaos_a=$(mktemp)
chaos_b=$(mktemp)
trap 'rm -f "$chaos_a" "$chaos_b"' EXIT
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --queries 2000 --seed 2017 --budget-secs 120 | tee "$chaos_a"
cargo run --release --offline -q -p dnswild --bin dnswild -- \
    smoke --chaos --queries 2000 --seed 2017 --budget-secs 120 > "$chaos_b"
if ! diff <(grep '^chaos' "$chaos_a") <(grep '^chaos' "$chaos_b"); then
    echo "chaos smoke not reproducible: fault schedule or counters differ between runs" >&2
    exit 1
fi
echo "chaos smoke reproducible: seed 2017 produced identical schedules and counters twice"
